#include "frontend/parser.hpp"

#include <map>
#include <optional>

#include "common/error.hpp"
#include "common/string_util.hpp"
#include "frontend/lexer.hpp"

namespace catt::frontend {

namespace {

using expr::Expr;
using expr::ExprPtr;
using expr::ScalarType;
using ir::ElemType;
using ir::Kernel;
using ir::StmtPtr;

/// What a name refers to inside a kernel body.
enum class SymKind { kFloatArray, kIntArray, kIntScalar, kIntLocal, kFloatLocal, kLoopVar };

bool is_array(SymKind k) { return k == SymKind::kFloatArray || k == SymKind::kIntArray; }

ScalarType sym_scalar_type(SymKind k) {
  return k == SymKind::kFloatLocal ? ScalarType::kFloat : ScalarType::kInt;
}

const std::map<std::string, expr::Builtin> kBuiltinMembers = {
    {"threadIdx.x", expr::Builtin::kThreadIdxX}, {"threadIdx.y", expr::Builtin::kThreadIdxY},
    {"threadIdx.z", expr::Builtin::kThreadIdxZ}, {"blockIdx.x", expr::Builtin::kBlockIdxX},
    {"blockIdx.y", expr::Builtin::kBlockIdxY},   {"blockIdx.z", expr::Builtin::kBlockIdxZ},
    {"blockDim.x", expr::Builtin::kBlockDimX},   {"blockDim.y", expr::Builtin::kBlockDimY},
    {"blockDim.z", expr::Builtin::kBlockDimZ},   {"gridDim.x", expr::Builtin::kGridDimX},
    {"gridDim.y", expr::Builtin::kGridDimY},     {"gridDim.z", expr::Builtin::kGridDimZ},
};

const std::map<std::string, int> kIntrinsics = {
    {"sqrtf", 1}, {"fabsf", 1}, {"expf", 1},  {"logf", 1},
    {"powf", 2},  {"floorf", 1}, {"fminf", 2}, {"fmaxf", 2},
};

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  std::vector<Kernel> program() {
    std::vector<Kernel> kernels;
    int pending_regs = 0;  // 0 = no directive pending
    while (!at_eof()) {
      if (peek().kind == TokKind::kDirective) {
        pending_regs = parse_regs_directive(next().text);
        continue;
      }
      Kernel k = kernel();
      if (pending_regs > 0) {
        k.regs_per_thread = pending_regs;
        pending_regs = 0;
      }
      ir::validate(k);
      ir::number_loops(k);
      kernels.push_back(std::move(k));
    }
    if (kernels.empty()) throw ParseError("no kernel in input", 1, 1);
    return kernels;
  }

 private:
  // ---- token plumbing ----
  const Token& peek(std::size_t off = 0) const {
    const std::size_t i = pos_ + off;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& next() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool at_eof() const { return peek().kind == TokKind::kEof; }

  bool is_punct(std::string_view p, std::size_t off = 0) const {
    return peek(off).kind == TokKind::kPunct && peek(off).text == p;
  }
  bool is_ident(std::string_view id, std::size_t off = 0) const {
    return peek(off).kind == TokKind::kIdent && peek(off).text == id;
  }
  bool accept_punct(std::string_view p) {
    if (!is_punct(p)) return false;
    next();
    return true;
  }
  void expect_punct(std::string_view p) {
    if (!accept_punct(p)) {
      throw ParseError("expected '" + std::string(p) + "', got '" + peek().text + "'",
                       peek().line, peek().col);
    }
  }
  std::string expect_ident() {
    if (peek().kind != TokKind::kIdent) {
      throw ParseError("expected identifier, got '" + peek().text + "'", peek().line, peek().col);
    }
    return next().text;
  }
  void expect_keyword(std::string_view kw) {
    if (!is_ident(kw)) {
      throw ParseError("expected '" + std::string(kw) + "'", peek().line, peek().col);
    }
    next();
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, peek().line, peek().col);
  }

  static int parse_regs_directive(const std::string& text) {
    const auto parts = split(text, '=');
    if (parts.size() != 2 || trim(parts[0]) != "regs") {
      throw ParseError("unknown directive //@" + text, 0, 0);
    }
    return static_cast<int>(std::strtol(std::string(trim(parts[1])).c_str(), nullptr, 10));
  }

  // ---- declarations ----
  Kernel kernel() {
    expect_keyword("__global__");
    expect_keyword("void");
    Kernel k;
    k.name = expect_ident();
    expect_punct("(");
    if (!is_punct(")")) {
      do {
        param(k);
      } while (accept_punct(","));
    }
    expect_punct(")");
    expect_punct("{");
    while (!is_punct("}")) {
      if (is_ident("__shared__")) {
        shared_decl(k);
      } else {
        k.body.push_back(statement());
      }
    }
    expect_punct("}");
    syms_.clear();
    return k;
  }

  void param(Kernel& k) {
    const bool is_float = is_ident("float");
    const bool is_int = is_ident("int");
    if (!is_float && !is_int) fail("expected parameter type");
    next();
    if (accept_punct("*")) {
      const std::string name = expect_ident();
      k.arrays.push_back({name, is_float ? ElemType::kF32 : ElemType::kI32});
      syms_[name] = is_float ? SymKind::kFloatArray : SymKind::kIntArray;
    } else {
      if (is_float) fail("float scalar parameters are not supported (use int)");
      const std::string name = expect_ident();
      k.scalars.push_back({name});
      syms_[name] = SymKind::kIntScalar;
    }
  }

  void shared_decl(Kernel& k) {
    expect_keyword("__shared__");
    const bool is_float = is_ident("float");
    const bool is_int = is_ident("int");
    if (!is_float && !is_int) fail("expected element type after __shared__");
    next();
    const std::string name = expect_ident();
    expect_punct("[");
    if (peek().kind != TokKind::kIntLit) fail("__shared__ array size must be an integer literal");
    const std::int64_t count = next().ival;
    expect_punct("]");
    expect_punct(";");
    k.shared.push_back({name, is_float ? ElemType::kF32 : ElemType::kI32, count});
    syms_[name] = is_float ? SymKind::kFloatArray : SymKind::kIntArray;
  }

  // ---- statements ----
  std::vector<StmtPtr> block_or_single() {
    std::vector<StmtPtr> body;
    if (accept_punct("{")) {
      while (!is_punct("}")) body.push_back(statement());
      expect_punct("}");
    } else {
      body.push_back(statement());
    }
    return body;
  }

  StmtPtr statement() {
    if (is_ident("int") || is_ident("float")) return local_decl();
    if (is_ident("for")) return for_stmt();
    if (is_ident("while")) return while_stmt();
    if (is_ident("if")) return if_stmt();
    if (is_ident("__syncthreads")) {
      next();
      expect_punct("(");
      expect_punct(")");
      expect_punct(";");
      return ir::sync();
    }
    return assign_or_store();
  }

  StmtPtr local_decl() {
    const bool is_float = is_ident("float");
    next();
    const std::string name = expect_ident();
    expect_punct("=");
    ExprPtr init = expression();
    expect_punct(";");
    if (is_float) {
      syms_[name] = SymKind::kFloatLocal;
      if (init->type == ScalarType::kInt) init = expr::cast(ScalarType::kFloat, std::move(init));
      return ir::decl_float(name, std::move(init));
    }
    syms_[name] = SymKind::kIntLocal;
    if (init->type == ScalarType::kFloat) init = expr::cast(ScalarType::kInt, std::move(init));
    return ir::decl_int(name, std::move(init));
  }

  StmtPtr for_stmt() {
    expect_keyword("for");
    expect_punct("(");
    expect_keyword("int");
    const std::string var = expect_ident();
    expect_punct("=");
    ExprPtr init = expression();
    expect_punct(";");
    const auto prev = syms_.find(var);
    const bool had_prev = prev != syms_.end();
    const SymKind saved = had_prev ? prev->second : SymKind::kLoopVar;
    syms_[var] = SymKind::kLoopVar;
    ExprPtr cond = expression();
    expect_punct(";");
    ExprPtr step = for_increment(var);
    expect_punct(")");
    auto body = block_or_single();
    if (had_prev) {
      syms_[var] = saved;
    } else {
      syms_.erase(var);
    }
    return ir::make_for(var, std::move(init), std::move(cond), std::move(step), std::move(body));
  }

  ExprPtr for_increment(const std::string& var) {
    const std::string name = expect_ident();
    if (name != var) fail("for-increment must update the loop variable '" + var + "'");
    if (accept_punct("++")) return expr::iconst(1);
    if (accept_punct("--")) return expr::iconst(-1);
    if (accept_punct("+=")) return expression();
    if (accept_punct("-=")) return expr::unary(expr::UnOp::kNeg, expression());
    if (accept_punct("=")) {
      // Accept the explicit `j = j + C` form.
      const std::string lhs = expect_ident();
      if (lhs != var) fail("for-increment must be of the form var = var + step");
      expect_punct("+");
      return expression();
    }
    fail("unsupported for-increment");
  }

  StmtPtr while_stmt() {
    expect_keyword("while");
    expect_punct("(");
    ExprPtr cond = expression();
    expect_punct(")");
    auto body = block_or_single();
    return ir::make_while(std::move(cond), std::move(body));
  }

  StmtPtr if_stmt() {
    expect_keyword("if");
    expect_punct("(");
    ExprPtr cond = expression();
    expect_punct(")");
    auto then_body = block_or_single();
    std::vector<StmtPtr> else_body;
    if (is_ident("else")) {
      next();
      else_body = block_or_single();
    }
    return ir::make_if(std::move(cond), std::move(then_body), std::move(else_body));
  }

  StmtPtr assign_or_store() {
    const std::string name = expect_ident();
    auto it = syms_.find(name);
    if (it == syms_.end()) fail("unknown identifier '" + name + "'");

    if (is_array(it->second)) {
      expect_punct("[");
      ExprPtr index = expression();
      expect_punct("]");
      const ScalarType elem =
          it->second == SymKind::kFloatArray ? ScalarType::kFloat : ScalarType::kInt;
      ExprPtr value = assignment_rhs(
          [&] { return expr::load(name, index->clone(), elem); }, elem);
      expect_punct(";");
      return ir::store(name, std::move(index), std::move(value));
    }

    if (it->second == SymKind::kIntScalar) fail("cannot assign to kernel parameter '" + name + "'");
    const ScalarType ty = sym_scalar_type(it->second);
    ExprPtr value = assignment_rhs([&] { return expr::var(name, ty); }, ty);
    expect_punct(";");
    return ir::assign(name, std::move(value));
  }

  /// Parses `= e`, `+= e`, `-= e`, `*= e`, `/= e` and returns the full RHS,
  /// desugaring compound assignment with `current()` as the old value.
  template <typename CurrentFn>
  ExprPtr assignment_rhs(CurrentFn current, ScalarType target) {
    expr::BinOp op{};
    bool compound = true;
    if (accept_punct("=")) {
      compound = false;
    } else if (accept_punct("+=")) {
      op = expr::BinOp::kAdd;
    } else if (accept_punct("-=")) {
      op = expr::BinOp::kSub;
    } else if (accept_punct("*=")) {
      op = expr::BinOp::kMul;
    } else if (accept_punct("/=")) {
      op = expr::BinOp::kDiv;
    } else {
      fail("expected assignment operator");
    }
    ExprPtr rhs = expression();
    if (compound) rhs = expr::binary(op, current(), std::move(rhs));
    if (target == ScalarType::kFloat && rhs->type == ScalarType::kInt) {
      rhs = expr::cast(ScalarType::kFloat, std::move(rhs));
    }
    if (target == ScalarType::kInt && rhs->type == ScalarType::kFloat) {
      rhs = expr::cast(ScalarType::kInt, std::move(rhs));
    }
    return rhs;
  }

  // ---- expressions (precedence climbing) ----
  ExprPtr expression() { return logical_or(); }

  ExprPtr logical_or() {
    ExprPtr e = logical_and();
    while (is_punct("||")) {
      next();
      e = expr::lor(std::move(e), logical_and());
    }
    return e;
  }

  ExprPtr logical_and() {
    ExprPtr e = equality();
    while (is_punct("&&")) {
      next();
      e = expr::land(std::move(e), equality());
    }
    return e;
  }

  ExprPtr equality() {
    ExprPtr e = relational();
    while (is_punct("==") || is_punct("!=")) {
      const bool eq = next().text == "==";
      ExprPtr rhs = relational();
      e = expr::binary(eq ? expr::BinOp::kEq : expr::BinOp::kNe, std::move(e), std::move(rhs));
    }
    return e;
  }

  ExprPtr relational() {
    ExprPtr e = additive();
    while (is_punct("<") || is_punct("<=") || is_punct(">") || is_punct(">=")) {
      const std::string op = next().text;
      ExprPtr rhs = additive();
      expr::BinOp b = op == "<"    ? expr::BinOp::kLt
                      : op == "<=" ? expr::BinOp::kLe
                      : op == ">"  ? expr::BinOp::kGt
                                   : expr::BinOp::kGe;
      e = expr::binary(b, std::move(e), std::move(rhs));
    }
    return e;
  }

  ExprPtr additive() {
    ExprPtr e = multiplicative();
    while (is_punct("+") || is_punct("-")) {
      const bool add = next().text == "+";
      ExprPtr rhs = multiplicative();
      e = expr::binary(add ? expr::BinOp::kAdd : expr::BinOp::kSub, std::move(e), std::move(rhs));
    }
    return e;
  }

  ExprPtr multiplicative() {
    ExprPtr e = unary();
    while (is_punct("*") || is_punct("/") || is_punct("%")) {
      const std::string op = next().text;
      ExprPtr rhs = unary();
      expr::BinOp b = op == "*" ? expr::BinOp::kMul
                      : op == "/" ? expr::BinOp::kDiv
                                  : expr::BinOp::kMod;
      e = expr::binary(b, std::move(e), std::move(rhs));
    }
    return e;
  }

  ExprPtr unary() {
    if (accept_punct("-")) return expr::unary(expr::UnOp::kNeg, unary());
    if (accept_punct("!")) return expr::unary(expr::UnOp::kNot, unary());
    // Cast: (int) e or (float) e.
    if (is_punct("(") && (is_ident("int", 1) || is_ident("float", 1)) && is_punct(")", 2)) {
      next();
      const bool to_float = next().text == "float";
      next();
      return expr::cast(to_float ? ScalarType::kFloat : ScalarType::kInt, unary());
    }
    return postfix();
  }

  ExprPtr postfix() {
    ExprPtr e = primary();
    if (e->kind == expr::ExprKind::kVar && !is_punct("[")) {
      auto it = syms_.find(e->name);
      if (it != syms_.end() && is_array(it->second)) {
        fail("array '" + e->name + "' used without subscript");
      }
    }
    while (is_punct("[")) {
      next();
      ExprPtr index = expression();
      expect_punct("]");
      if (e->kind != expr::ExprKind::kVar) fail("subscript on non-array expression");
      auto it = syms_.find(e->name);
      if (it == syms_.end() || !is_array(it->second)) {
        fail("subscript on non-array '" + e->name + "'");
      }
      const ScalarType elem =
          it->second == SymKind::kFloatArray ? ScalarType::kFloat : ScalarType::kInt;
      e = expr::load(e->name, std::move(index), elem);
    }
    return e;
  }

  ExprPtr primary() {
    const Token& t = peek();
    if (t.kind == TokKind::kIntLit) {
      next();
      return expr::iconst(t.ival);
    }
    if (t.kind == TokKind::kFloatLit) {
      next();
      return expr::fconst(t.fval);
    }
    if (is_punct("(")) {
      next();
      ExprPtr e = expression();
      expect_punct(")");
      return e;
    }
    if (t.kind == TokKind::kIdent) {
      // SIMT builtins: threadIdx.x and friends.
      if ((t.text == "threadIdx" || t.text == "blockIdx" || t.text == "blockDim" ||
           t.text == "gridDim") &&
          is_punct(".", 1)) {
        std::string full = next().text;
        next();  // '.'
        full += "." + expect_ident();
        auto it = kBuiltinMembers.find(full);
        if (it == kBuiltinMembers.end()) fail("unknown builtin '" + full + "'");
        return expr::builtin(it->second);
      }
      // min/max over ints map to BinOp kMin/kMax.
      if ((t.text == "min" || t.text == "max") && is_punct("(", 1)) {
        const bool is_min = next().text == "min";
        expect_punct("(");
        ExprPtr a = expression();
        expect_punct(",");
        ExprPtr b = expression();
        expect_punct(")");
        return expr::binary(is_min ? expr::BinOp::kMin : expr::BinOp::kMax, std::move(a),
                            std::move(b));
      }
      // Math intrinsics.
      auto intr = kIntrinsics.find(t.text);
      if (intr != kIntrinsics.end() && is_punct("(", 1)) {
        const std::string fn = next().text;
        expect_punct("(");
        std::vector<ExprPtr> args;
        if (!is_punct(")")) {
          do {
            args.push_back(expression());
          } while (accept_punct(","));
        }
        expect_punct(")");
        if (static_cast<int>(args.size()) != intr->second) {
          fail(fn + " expects " + std::to_string(intr->second) + " argument(s)");
        }
        return expr::call(fn, std::move(args));
      }
      // Plain identifier. Arrays pass through as kVar; postfix() turns
      // them into kLoad on '[' or rejects the bare use.
      next();
      auto it = syms_.find(t.text);
      if (it == syms_.end()) fail("unknown identifier '" + t.text + "'");
      return expr::var(t.text, sym_scalar_type(it->second));
    }
    fail("unexpected token '" + t.text + "'");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::map<std::string, SymKind> syms_;
};

}  // namespace

std::vector<ir::Kernel> parse_program(const std::string& source) {
  Parser p(lex(source));
  return p.program();
}

ir::Kernel parse_kernel(const std::string& source) {
  auto kernels = parse_program(source);
  if (kernels.size() != 1) {
    throw ParseError("expected exactly one kernel, found " + std::to_string(kernels.size()), 1, 1);
  }
  return std::move(kernels.front());
}

}  // namespace catt::frontend
