// Recursive-descent parser: mini-CUDA source -> kernel IR.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace catt::frontend {

/// Parses a translation unit containing one or more `__global__` kernels.
/// Throws catt::ParseError on syntax errors and catt::IrError when the
/// resulting kernel fails validation.
std::vector<ir::Kernel> parse_program(const std::string& source);

/// Convenience for the common single-kernel case; throws if the source
/// does not contain exactly one kernel.
ir::Kernel parse_kernel(const std::string& source);

}  // namespace catt::frontend
