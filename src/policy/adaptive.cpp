#include "policy/adaptive.hpp"

#include <algorithm>
#include <vector>

#include "gpusim/cache.hpp"
#include "policy/engine.hpp"

namespace catt::policy {

namespace sched = sim::sched;

namespace {

/// Per-SM adaptive throttling (see header comments here and in
/// engine.hpp). Eligibility mirrors warp admission order: the cap oldest
/// live warps may issue, the rest are vetoed — the same oldest-first
/// priority the static transform gives its surviving warp groups.
///
/// Loop phases are tracked through barrier releases: each TB counts its
/// completed barriers, and the SM's phase is the minimum over live TBs
/// (the slowest TB's progress through the kernel's barrier sequence). A
/// phase change observed at an update boundary resets the controller to
/// the static prior — the evidence gathered in the previous phase does
/// not transfer.
class AdaptivePolicy final : public sched::SchedPolicy {
 public:
  explicit AdaptivePolicy(const sched::PolicyConfig& cfg)
      : cfg_(cfg),
        ctrl_(ControllerConfig{cfg.adaptive_window, cfg.adaptive_low_hit,
                               cfg.adaptive_hysteresis, cfg.adaptive_cooldown,
                               cfg.adaptive_max_drop, cfg.adaptive_min_active}),
        next_update_(cfg.update_interval) {}

  void on_warp_admitted(int warp, int tb) override {
    const std::size_t wn = static_cast<std::size_t>(warp) + 1;
    if (warps_.size() < wn) warps_.resize(wn);
    WarpState& w = warps_[static_cast<std::size_t>(warp)];
    w.live = true;
    w.eligible = true;
    ++live_warps_;
    const std::size_t tn = static_cast<std::size_t>(tb) + 1;
    if (tbs_.size() < tn) tbs_.resize(tn);
    TbState& t = tbs_[static_cast<std::size_t>(tb)];
    t.live = true;
    ++t.warps;
    apply_cap();
  }

  void on_warp_done(int warp, int tb) override {
    WarpState& w = warps_[static_cast<std::size_t>(warp)];
    if (!w.live) return;
    w.live = false;
    --live_warps_;
    TbState& t = tbs_[static_cast<std::size_t>(tb)];
    if (--t.warps == 0) t.live = false;
    apply_cap();
  }

  void on_barrier(int tb) override { ++tbs_[static_cast<std::size_t>(tb)].barriers_done; }

  void on_bind(int l1_mshrs) override { mshr_capacity_ = l1_mshrs; }

  void update(std::int64_t now, const sim::CacheStats& l1, std::uint64_t ready_warps,
              std::uint64_t mshr_in_flight, std::uint64_t insts_retired) override {
    ++stats_.updates;
    while (next_update_ <= now) next_update_ += cfg_.update_interval;

    // A new loop phase first: the old window's evidence belongs to code
    // that is no longer running, so the controller returns to the static
    // prior before sampling restarts. Phases only move forward: freshly
    // admitted TBs re-enter at barrier count zero, and that turnover dip
    // is the same code still running, not a new phase — treating it as
    // one would reset (and re-arm) the controller on every TB rotation.
    const int phase = current_phase();
    if (phase > phase_) {
      if (ctrl_.drop() != 0) {
        decisions_.push_back({now, 0, phase, ctrl_.drop(), 0,
                              sched::DecisionReason::kPhaseReset});
      }
      phase_ = phase;
      ctrl_.reset();
      apply_cap();
    }

    const std::uint64_t d_acc = l1.accesses - last_accesses_;
    const std::uint64_t d_hit = l1.hits - last_hits_;
    const std::uint64_t d_insts = insts_retired - last_insts_;
    // `now` is global simulation time, not launch-relative: the span of
    // the very first interval is measured from this policy's first sight
    // of the clock, never from zero, or every launch after the first
    // would start with a window whose IPC is diluted by the entire
    // preceding history (and whose probe verdicts would then always pass).
    const std::int64_t d_cycles = last_now_ >= 0 ? now - last_now_ : cfg_.update_interval;
    last_accesses_ = l1.accesses;
    last_hits_ = l1.hits;
    last_insts_ = insts_retired;
    last_now_ = now;

    IntervalSample s;
    s.had_traffic = d_acc > 0;
    s.hit_rate = d_acc > 0 ? static_cast<double>(d_hit) / static_cast<double>(d_acc) : 0.0;
    s.mshr_in_flight = mshr_in_flight;
    s.mshr_capacity = mshr_capacity_;
    s.ready_warps = ready_warps;
    s.insts = d_insts;
    s.cycles = d_cycles;
    s.live_warps = live_warps_;

    const int before = ctrl_.drop();
    switch (ctrl_.observe(s)) {
      case Verdict::kHold:
        break;
      case Verdict::kThrottle:
        decisions_.push_back({now, 0, phase_, before, ctrl_.drop(),
                              sched::DecisionReason::kThrottle});
        apply_cap();
        break;
      case Verdict::kRelax:
        decisions_.push_back({now, 0, phase_, before, ctrl_.drop(),
                              sched::DecisionReason::kRelax});
        apply_cap();
        break;
    }
  }

  std::int64_t next_update_time() const override { return next_update_; }

  bool may_issue(int warp, int tb) override {
    (void)tb;
    const bool ok = warps_[static_cast<std::size_t>(warp)].eligible;
    stats_.vetoes += ok ? 0 : 1;
    return ok;
  }

  bool idle_skippable() const override { return true; }

  const std::vector<sched::Decision>* decisions() const override { return &decisions_; }

 private:
  struct WarpState {
    bool live = false;
    bool eligible = true;
  };
  struct TbState {
    int warps = 0;
    int barriers_done = 0;
    bool live = false;
  };

  /// The slowest live TB's completed-barrier count; with no live TBs the
  /// phase is whatever it last was (nothing left to correct).
  int current_phase() const {
    int phase = phase_;
    bool any = false;
    for (const TbState& t : tbs_) {
      if (!t.live) continue;
      phase = any ? std::min(phase, t.barriers_done) : t.barriers_done;
      any = true;
    }
    return phase;
  }

  /// Recomputes warp eligibility from the controller level: the cap
  /// oldest live warps issue, the rest wait. The floor keeps at least
  /// min_active (or every remaining) warp running, so the SM always makes
  /// progress toward the next phase boundary.
  void apply_cap() {
    const int cap = active_cap(live_warps_, ctrl_.drop(), cfg_.adaptive_min_active);
    int seen = 0;
    for (WarpState& w : warps_) {
      if (!w.live) continue;
      w.eligible = seen < cap;
      ++seen;
    }
    stats_.throttle_level = std::min(cap, live_warps_);
  }

  const sched::PolicyConfig cfg_;
  WindowedController ctrl_;
  std::int64_t next_update_;
  std::vector<WarpState> warps_;
  std::vector<TbState> tbs_;
  std::vector<sched::Decision> decisions_;
  std::uint64_t last_accesses_ = 0;
  std::uint64_t last_hits_ = 0;
  std::uint64_t last_insts_ = 0;
  std::int64_t last_now_ = -1;
  int live_warps_ = 0;
  int mshr_capacity_ = 0;
  int phase_ = 0;
};

}  // namespace

std::unique_ptr<sched::SchedPolicy> make_adaptive(const sched::PolicyConfig& cfg) {
  return std::make_unique<AdaptivePolicy>(cfg);
}

}  // namespace catt::policy
