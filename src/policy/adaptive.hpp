// The adaptive SchedPolicy: glue between the gpusim sched seam and the
// WindowedController in engine.hpp. One instance per SM; samples the SM's
// engine-internal counters at every update-interval boundary, feeds the
// controller, and enforces the resulting drop-from-static level by
// vetoing the youngest live warps. See engine.hpp for the control law and
// DESIGN.md "Policy engine" for the determinism argument.
#pragma once

#include <memory>

#include "gpusim/sched/policy.hpp"

namespace catt::policy {

/// Factory used by sim::sched::make_policy; cfg.kind must be kAdaptive.
std::unique_ptr<sim::sched::SchedPolicy> make_adaptive(const sim::sched::PolicyConfig& cfg);

}  // namespace catt::policy
