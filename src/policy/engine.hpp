// Phase-adaptive throttling policy engine (ROADMAP item 2): the feedback
// controller that closes the loop from the simulator's interval
// time-series back into the effective throttle level. Modeled on APEX's
// throttling policy engine (SNIPPETS.md Snippet 1): a window of recent
// interval samples is reduced to a windowed L1D hit rate, and the
// controller walks the throttle level down (kThrottle) when the window
// falls below a low band, back up (kRelax) once it recovers past
// low + hysteresis, with a cooldown of full windows after every change so
// the level cannot oscillate at the decision rate.
//
// The cache signature alone cannot tell *thrashing* (reuse exists, and a
// smaller active set recovers it) from *streaming* (no reuse; throttling
// only cuts memory-level parallelism) — both present as a low windowed hit
// rate with saturated MSHRs. So every level change is a *probe*: the
// controller records the pre-probe window's IPC (retired warp instructions
// per elapsed cycle), drops one level, and compares the first full window
// after the cooldown. If IPC improved by a margin the probe commits (and
// deeper probes may follow); otherwise the level reverts and probing is
// suppressed until the next loop-phase reset — a streaming phase pays for
// at most one mispriced probe.
//
// The level is expressed as a *drop below the static prior*: 0 means "run
// the code exactly as compiled" — for CATT-transformed kernels the static
// per-loop plan baked into the code IS the prior, and the controller only
// corrects downward from it (it cannot add TLP the code does not have).
// Each level halves the active warp set (active_cap), the same
// multiplicative backoff DYNCTA applies to TB counts: additive single-warp
// steps are invisible against the 50+ resident warps of a full SM. This is
// what makes the adaptive policy safe on the apps static CATT already
// wins: inside a split loop the inactive warp groups wait at the
// transform's __syncthreads(), the engines exempt TBs with barrier
// waiters from vetoes, and the controller's corrections only bite where
// the compile-time plan left code untransformed.
//
// Everything here is deliberately simulator-agnostic plain state (no obs
// dependency, no engine types beyond plain counts), so a -DCATT_OBS=OFF
// build drives the controller from the engine-internal sample path
// unchanged, and unit tests (tests/policy_test.cpp) can step it directly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace catt::policy {

/// One update-interval's worth of engine-internal observations, sampled by
/// the adaptive SchedPolicy at its deterministic interval boundaries. The
/// fields mirror the obs interval sampler's series (L1D hit rate, MSHR
/// occupancy, ready warps) but are fed straight from the SM datapath so
/// the controller works identically with observability compiled out.
struct IntervalSample {
  double hit_rate = 0.0;              // delta L1D hit rate over the interval
  bool had_traffic = false;           // any L1D accesses this interval?
  std::uint64_t mshr_in_flight = 0;   // in-flight misses at the sample point
  int mshr_capacity = 0;              // the SM's MSHR count (0 = unknown)
  std::uint64_t ready_warps = 0;      // issuable warps at the sample point
  std::uint64_t insts = 0;            // warp instructions retired this interval
  std::int64_t cycles = 0;            // interval span (event engines skip idle
                                      // stretches, so spans are not uniform)
  int live_warps = 0;                 // resident un-finished warps
};

struct ControllerConfig {
  int window = 4;            // samples per decision window; <= 0 disables
  double low_hit = 0.55;     // throttle band: windowed hit rate below this
  double hysteresis = 0.30;  // relax band starts at low_hit + hysteresis
  int cooldown = 2;          // full windows to sit out after a level change
  int max_drop = 8;          // hard cap on levels below the static prior
  int min_active = 2;        // never throttle below this many live warps
};

/// A controller's verdict for one completed window (kHold in between).
enum class Verdict : std::uint8_t { kHold, kThrottle, kRelax };

/// Active-warp cap for a drop level: each level halves the active set,
/// floored at min_active (clamped to the live count) and never below one
/// warp while any is live. Shared by the controller (to tell when a
/// further level would have no effect) and the scheduler policy (to turn
/// the level into per-warp eligibility).
int active_cap(int live_warps, int drop, int min_active);

/// Feedback controllers consumed by the adaptive SchedPolicy: feed one
/// sample per interval, read the current drop-from-static level back.
class PolicyEngine {
 public:
  virtual ~PolicyEngine() = default;

  /// Consumes one interval sample; returns the level transition this
  /// sample triggered (at most one per full window).
  virtual Verdict observe(const IntervalSample& s) = 0;

  /// Current throttle level as a drop below the static prior (>= 0).
  virtual int drop() const = 0;

  /// Loop-phase boundary: discard the window, lift the cooldown, and
  /// return to the static prior (drop 0). The caller logs the transition.
  virtual void reset() = 0;
};

/// The windowed hysteresis controller described in the header comment.
/// Deterministic by construction: state advances only in observe()/reset()
/// and depends only on the sample values.
class WindowedController final : public PolicyEngine {
 public:
  explicit WindowedController(const ControllerConfig& cfg);

  Verdict observe(const IntervalSample& s) override;
  int drop() const override { return drop_; }
  void reset() override;

  /// Windows remaining before the next decision opportunity (test probe).
  int cooldown_remaining() const { return cooldown_; }

  /// True while a probe's outcome is still pending (test probe).
  bool probing() const { return probing_; }
  /// True once a failed probe has shut off further probes (test probe).
  bool suppressed() const { return suppressed_; }

 private:
  /// Throttling only helps contention, and contention means MSHR
  /// *saturation*: thrashing kernels pin the in-flight miss count at the
  /// datapath's limit (misses queue faster than the memory system absorbs
  /// them), while streaming kernels cruise at a low steady level far
  /// below it. The gate is this fraction of the sampled MSHR capacity —
  /// or one in-flight miss when the capacity is unknown (capacity 0).
  /// (Instantaneous ready-warp counts are sampled too but deliberately not
  /// gated on: at event-driven interval boundaries nearly every warp is
  /// parked on memory, so the instantaneous count is ~1 regardless of how
  /// much TLP the SM actually has.)
  static constexpr double kContendedFrac = 0.5;

  /// A probe commits only if the post-probe window's IPC beats the
  /// pre-probe baseline's by this fraction; ties revert (conservative: the
  /// static prior is presumed right until throttling demonstrably helps).
  static constexpr double kProbeMargin = 0.02;

  /// The probe baseline is the rolling IPC over this many completed
  /// windows (including the trigger window), so in steady phases the
  /// comparison is against representative throughput rather than one
  /// unlucky burst window.
  static constexpr int kBaselineWindows = 4;

  /// A committed level whose windowed hit rate sits between the throttle
  /// and relax bands (the dead band) for this many consecutive decision
  /// windows decays one level: a correction that neither re-earns its
  /// signature nor recovers locality does not get to park there forever.
  static constexpr int kDeadBandPatience = 2;

  /// One completed window's work aggregate, kept for the rolling baseline.
  struct WindowWork {
    std::uint64_t insts = 0;
    std::int64_t cycles = 0;
  };

  /// Rolling IPC over the retained window aggregates.
  double baseline_ipc() const;

  const ControllerConfig cfg_;
  std::vector<IntervalSample> win_;   // cleared at every full window
  std::vector<WindowWork> hist_;      // last kBaselineWindows aggregates
  std::size_t hist_next_ = 0;         // ring cursor into hist_
  int drop_ = 0;
  int cooldown_ = 0;
  int dead_band_ = 0;        // consecutive dead-band windows at drop_ > 0
  bool probing_ = false;     // a probe's first post-cooldown window pending
  bool suppressed_ = false;  // failed probe: no more probes until reset()
  double probe_ipc_ = 0.0;   // pre-probe rolling baseline IPC to beat
};

std::unique_ptr<PolicyEngine> make_windowed_controller(const ControllerConfig& cfg);

}  // namespace catt::policy
