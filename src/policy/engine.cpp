#include "policy/engine.hpp"

#include <algorithm>

namespace catt::policy {

int active_cap(int live_warps, int drop, int min_active) {
  int cap = live_warps >> std::min(drop, 30);
  cap = std::max(cap, std::min(min_active, live_warps));
  return std::max(cap, live_warps > 0 ? 1 : 0);
}

WindowedController::WindowedController(const ControllerConfig& cfg) : cfg_(cfg) {
  if (cfg_.window > 0) win_.reserve(static_cast<std::size_t>(cfg_.window));
}

Verdict WindowedController::observe(const IntervalSample& s) {
  if (cfg_.window <= 0) return Verdict::kHold;  // controller disabled
  win_.push_back(s);
  if (static_cast<int>(win_.size()) < cfg_.window) return Verdict::kHold;

  // A full window is one decision opportunity; the samples are consumed
  // either way so consecutive decisions never share evidence.
  double hit_sum = 0.0;
  double mshr_sum = 0.0;
  double ready_sum = 0.0;
  WindowWork work;
  int traffic = 0;
  for (const IntervalSample& w : win_) {
    if (w.had_traffic) {
      hit_sum += w.hit_rate;
      ++traffic;
    }
    mshr_sum += static_cast<double>(w.mshr_in_flight);
    ready_sum += static_cast<double>(w.ready_warps);
    work.insts += w.insts;
    work.cycles += w.cycles;
  }
  const int live = win_.back().live_warps;
  const int mshr_capacity = win_.back().mshr_capacity;
  const double n = static_cast<double>(win_.size());
  win_.clear();

  // The rolling baseline always advances, decisions or not: probes are
  // judged against representative recent throughput, and after a revert
  // the ring refills with unthrottled windows before the next phase's
  // probe can consult it.
  if (hist_.size() < static_cast<std::size_t>(kBaselineWindows)) {
    hist_.push_back(work);
  } else {
    hist_[hist_next_] = work;
    hist_next_ = (hist_next_ + 1) % hist_.size();
  }
  const double ipc = baseline_ipc();

  if (cooldown_ > 0) {
    --cooldown_;
    return Verdict::kHold;
  }

  if (traffic == 0) {
    // No memory traffic at all: a compute-bound phase, where any residual
    // throttle only idles warps. Walk back toward the static prior. A
    // pending probe verdict is meaningless against a window that ran
    // different code, so it is abandoned (without suppression).
    probing_ = false;
    if (drop_ > 0) {
      --drop_;
      cooldown_ = cfg_.cooldown;
      return Verdict::kRelax;
    }
    return Verdict::kHold;
  }

  if (probing_) {
    // Probe verdict: did the tighter cap actually retire more work per
    // cycle than the pre-probe baseline? Commit on a clear improvement;
    // otherwise revert and stop probing — the low hit rate is streaming,
    // not thrashing, and every further probe would pay the same toll for
    // the same answer.
    probing_ = false;
    if (ipc <= probe_ipc_ * (1.0 + kProbeMargin)) {
      --drop_;
      suppressed_ = true;
      cooldown_ = cfg_.cooldown;
      return Verdict::kRelax;
    }
  }

  const double hit = hit_sum / static_cast<double>(traffic);
  const double mshr_mean = mshr_sum / n;
  (void)ready_sum;  // sampled for observability, not gated on (see header)

  if (hit < cfg_.low_hit) {
    dead_band_ = 0;
    // Thrashing signature: poor windowed hit rate with misses queued in
    // the MSHRs. Without in-flight misses the low hit rate is not
    // contention; a level that no longer shrinks the cap is not taken.
    // The new level is provisional until the post-cooldown window's IPC
    // confirms it (see above).
    const bool effective =
        active_cap(live, drop_ + 1, cfg_.min_active) < active_cap(live, drop_, cfg_.min_active);
    const double contended =
        mshr_capacity > 0 ? kContendedFrac * static_cast<double>(mshr_capacity) : 1.0;
    if (!suppressed_ && mshr_mean >= contended && drop_ < cfg_.max_drop && effective) {
      probe_ipc_ = ipc;
      probing_ = true;
      ++drop_;
      cooldown_ = cfg_.cooldown;
      return Verdict::kThrottle;
    }
    return Verdict::kHold;
  }

  if (drop_ > 0 && hit > cfg_.low_hit + cfg_.hysteresis) {
    dead_band_ = 0;
    --drop_;
    cooldown_ = cfg_.cooldown;
    return Verdict::kRelax;
  }

  if (drop_ > 0 && ++dead_band_ >= kDeadBandPatience) {
    // Dead band: the signature is gone but locality never recovered past
    // the relax band. The level stops earning its keep — decay one step
    // rather than parking a stale correction for the rest of the phase.
    dead_band_ = 0;
    --drop_;
    cooldown_ = cfg_.cooldown;
    return Verdict::kRelax;
  }
  return Verdict::kHold;
}

double WindowedController::baseline_ipc() const {
  std::uint64_t insts = 0;
  std::int64_t cycles = 0;
  for (const WindowWork& w : hist_) {
    insts += w.insts;
    cycles += w.cycles;
  }
  return cycles > 0 ? static_cast<double>(insts) / static_cast<double>(cycles) : 0.0;
}

void WindowedController::reset() {
  win_.clear();
  hist_.clear();
  hist_next_ = 0;
  drop_ = 0;
  cooldown_ = 0;
  dead_band_ = 0;
  probing_ = false;
  suppressed_ = false;
  probe_ipc_ = 0.0;
}

std::unique_ptr<PolicyEngine> make_windowed_controller(const ControllerConfig& cfg) {
  return std::make_unique<WindowedController>(cfg);
}

}  // namespace catt::policy
