#include "transform/variants.hpp"

#include <sstream>

#include "common/error.hpp"
#include "transform/transform.hpp"

namespace catt::xform {

namespace {

/// Plans are equal iff they request the same warp splits and TB limit.
bool same_plan(const analysis::ThrottlePlan& a, const analysis::ThrottlePlan& b) {
  if (a.tb_limit != b.tb_limit) return false;
  if (a.warp_throttles.size() != b.warp_throttles.size()) return false;
  for (std::size_t i = 0; i < a.warp_throttles.size(); ++i) {
    if (a.warp_throttles[i].loop_id != b.warp_throttles[i].loop_id ||
        a.warp_throttles[i].n_divisor != b.warp_throttles[i].n_divisor) {
      return false;
    }
  }
  return true;
}

}  // namespace

VariantSet make_launch_variants(const arch::GpuArch& arch, const ir::Kernel& kernel,
                                const std::vector<LaunchCase>& cases,
                                const analysis::AnalysisOptions& opts) {
  if (cases.empty()) throw IrError("make_launch_variants: no launch cases");

  VariantSet out;
  out.original_name = kernel.name;
  out.case_to_variant.assign(cases.size(), -1);

  for (std::size_t c = 0; c < cases.size(); ++c) {
    const analysis::KernelAnalysis ka =
        analysis::analyze(arch, kernel, cases[c].launch, cases[c].params, opts);
    if (!ka.plan.any()) continue;  // this launch runs the original

    // Reuse an existing variant with the identical plan if the transform
    // is also identical (warp splits depend on warps-per-TB, so the block
    // shape must match too).
    int found = -1;
    for (std::size_t v = 0; v < out.variants.size(); ++v) {
      if (same_plan(out.variants[v].plan, ka.plan) &&
          cases[out.variants[v].cases.front()].launch.block.count() ==
              cases[c].launch.block.count()) {
        found = static_cast<int>(v);
        break;
      }
    }
    if (found >= 0) {
      out.variants[static_cast<std::size_t>(found)].cases.push_back(c);
      out.case_to_variant[c] = found;
      continue;
    }

    Variant v;
    v.suffix = "__catt_v" + std::to_string(out.variants.size() + 1);
    v.plan = ka.plan;
    TransformResult tr = apply_plan(arch, kernel, cases[c].launch, ka.plan);
    v.kernel = std::move(tr.kernel);
    v.kernel.name = kernel.name + v.suffix;
    v.cases.push_back(c);
    out.case_to_variant[c] = static_cast<int>(out.variants.size());
    out.variants.push_back(std::move(v));
  }
  return out;
}

const ir::Kernel* VariantSet::select(const arch::LaunchConfig& launch,
                                     const std::vector<LaunchCase>& cases) const {
  for (std::size_t c = 0; c < cases.size() && c < case_to_variant.size(); ++c) {
    if (cases[c].launch.grid == launch.grid && cases[c].launch.block == launch.block) {
      const int v = case_to_variant[c];
      return v < 0 ? nullptr : &variants[static_cast<std::size_t>(v)].kernel;
    }
  }
  return nullptr;  // unforeseen launch: original kernel
}

std::string VariantSet::dispatch_source(const std::vector<LaunchCase>& cases) const {
  std::ostringstream os;
  os << "// Auto-generated CATT dispatch for " << original_name << ".\n";
  os << "// Selects the throttled variant matching the runtime launch\n";
  os << "// dimensions; unforeseen launches fall back to the original.\n";
  os << "#define CATT_LAUNCH_" << original_name << "(grid, block, ...) \\\n";
  bool first = true;
  for (std::size_t c = 0; c < cases.size(); ++c) {
    const int v = case_to_variant[c];
    if (v < 0) continue;
    const auto& l = cases[c].launch;
    os << "    " << (first ? "" : ": ") << "((grid).x == " << l.grid.x
       << " && (block).x == " << l.block.x;
    if (l.block.y > 1) os << " && (block).y == " << l.block.y;
    os << ") ? " << original_name << variants[static_cast<std::size_t>(v)].suffix
       << "<<<(grid), (block)>>>(__VA_ARGS__) \\\n";
    first = false;
  }
  os << "    " << (first ? "" : ": ") << original_name
     << "<<<(grid), (block)>>>(__VA_ARGS__)\n";
  return os.str();
}

}  // namespace catt::xform
