#include "transform/transform.hpp"

#include <algorithm>
#include <functional>

#include "common/error.hpp"
#include "occupancy/occupancy.hpp"

namespace catt::xform {

namespace {

using ir::Stmt;
using ir::StmtKind;
using ir::StmtPtr;

/// Replaces the statement with loop_id == `target` wherever it appears in
/// `body` with the statements produced by `make_replacement(original)`.
/// Returns true once replaced.
bool replace_loop(std::vector<StmtPtr>& body, int target,
                  const std::function<std::vector<StmtPtr>(const Stmt&)>& make_replacement) {
  for (std::size_t i = 0; i < body.size(); ++i) {
    Stmt& s = *body[i];
    if (s.kind == StmtKind::kFor && s.loop_id == target) {
      std::vector<StmtPtr> repl = make_replacement(s);
      body.erase(body.begin() + static_cast<std::ptrdiff_t>(i));
      body.insert(body.begin() + static_cast<std::ptrdiff_t>(i),
                  std::make_move_iterator(repl.begin()), std::make_move_iterator(repl.end()));
      return true;
    }
    if (replace_loop(s.body, target, make_replacement)) return true;
    if (replace_loop(s.else_body, target, make_replacement)) return true;
  }
  return false;
}

}  // namespace

expr::ExprPtr warp_id_expr(const arch::Dim3& block, int warp_size) {
  using namespace expr;
  ExprPtr linear = tid_x();
  if (block.y > 1 || block.z > 1) {
    linear = add(std::move(linear), mul(tid_y(), ntid_x()));
  }
  if (block.z > 1) {
    linear = add(std::move(linear),
                 mul(builtin(Builtin::kThreadIdxZ), mul(ntid_x(), ntid_y())));
  }
  return div(std::move(linear), iconst(warp_size));
}

ir::Kernel apply_warp_throttle(const ir::Kernel& kernel, const arch::LaunchConfig& launch,
                               int loop_id, int n, int warp_size) {
  const int warps_per_tb = launch.warps_per_block(warp_size);
  if (n <= 1 || warps_per_tb % n != 0) {
    throw IrError("warp throttle factor " + std::to_string(n) + " must divide warps/TB (" +
                  std::to_string(warps_per_tb) + ") and exceed 1");
  }
  const int group_warps = warps_per_tb / n;

  ir::Kernel out = kernel.clone();
  bool barrier_in_loop = false;
  const bool replaced = replace_loop(
      out.body, loop_id, [&](const Stmt& loop) {
        if (ir::contains_sync(loop)) barrier_in_loop = true;
        std::vector<StmtPtr> repl;
        for (int g = 0; g < n; ++g) {
          using namespace expr;
          // if (warp_id >= g*group && warp_id < (g+1)*group) { <loop> }
          ExprPtr guard = land(
              ge(warp_id_expr(launch.block, warp_size), iconst(static_cast<std::int64_t>(g) * group_warps)),
              lt(warp_id_expr(launch.block, warp_size),
                 iconst(static_cast<std::int64_t>(g + 1) * group_warps)));
          std::vector<StmtPtr> then_body;
          then_body.push_back(loop.clone());
          repl.push_back(ir::make_if(std::move(guard), std::move(then_body)));
          // Barrier between groups so they execute in order (Figure 4).
          repl.push_back(ir::sync());
        }
        return repl;
      });
  if (!replaced) {
    throw IrError("kernel '" + kernel.name + "' has no loop with id " + std::to_string(loop_id));
  }
  if (barrier_in_loop) {
    throw IrError("kernel '" + kernel.name + "': cannot warp-split loop " +
                  std::to_string(loop_id) + " — it contains __syncthreads()");
  }
  ir::number_loops(out);
  ir::validate(out);
  return out;
}

ir::Kernel apply_tb_throttle(const arch::GpuArch& arch, const ir::Kernel& kernel,
                             const arch::LaunchConfig& launch, int target_tbs) {
  const std::size_t dummy_bytes =
      occupancy::dummy_shared_bytes_for_tb_limit(arch, kernel, launch, target_tbs);
  if (dummy_bytes == 0) return kernel.clone();

  ir::Kernel out = kernel.clone();
  const std::int64_t count =
      static_cast<std::int64_t>(dummy_bytes / ir::elem_size(ir::ElemType::kF32));
  out.shared.push_back({kDummySharedName, ir::ElemType::kF32, count});
  // A write keeps the allocation from being optimized away (Figure 5).
  out.body.insert(out.body.begin(),
                  ir::store(kDummySharedName, expr::mod(expr::tid_x(), expr::iconst(count)),
                            expr::fconst(0.0)));
  ir::number_loops(out);
  ir::validate(out);
  return out;
}

TransformResult apply_plan(const arch::GpuArch& arch, const ir::Kernel& kernel,
                           const arch::LaunchConfig& launch,
                           const analysis::ThrottlePlan& plan) {
  TransformResult res;
  res.kernel = kernel.clone();

  // Warp-level splits first. Loop ids refer to the *original* numbering;
  // the splits clone loops (which renumbers), so apply in descending
  // loop_id order and renumber once at the end — splitting loop A never
  // changes the pre-split id of a different loop B when B is processed
  // first in descending order.
  auto throttles = plan.warp_throttles;
  std::sort(throttles.begin(), throttles.end(),
            [](const auto& a, const auto& b) { return a.loop_id > b.loop_id; });
  for (const auto& t : throttles) {
    res.kernel = apply_warp_throttle(res.kernel, launch, t.loop_id, t.n_divisor,
                                     /*warp_size=*/32);
    ++res.warp_split_loops;
  }

  if (plan.tb_limit > 0) {
    const std::size_t dummy =
        occupancy::dummy_shared_bytes_for_tb_limit(arch, res.kernel, launch, plan.tb_limit);
    res.kernel = apply_tb_throttle(arch, res.kernel, launch, plan.tb_limit);
    res.tb_applied = dummy > 0;
    res.dummy_shared_bytes = dummy;
  }
  return res;
}

}  // namespace catt::xform
