// Kernel-variant dispatch (Section 4.3, last paragraph): "For applications
// whose kernel function parameters (i.e., grid size, thread block size,
// shared memory size) are unknown at compile time, the modified kernel
// function is duplicated with different thread throttling factors. The
// kernel function is then selectively invoked according to the dynamically
// determined values."
//
// Given the launch configurations a kernel may be invoked with, this pass
// analyzes each, transforms a variant per *distinct* throttling plan, and
// emits (a) the variant kernels and (b) a host-side dispatch function that
// picks the right variant from the runtime grid/block dimensions, falling
// back to the original kernel for unforeseen launches.
#pragma once

#include <string>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "arch/launch.hpp"
#include "catt/analysis.hpp"
#include "ir/ir.hpp"

namespace catt::xform {

/// One anticipated launch: geometry plus the scalar arguments it implies.
struct LaunchCase {
  arch::LaunchConfig launch;
  expr::ParamEnv params;
};

struct Variant {
  /// Suffix appended to the kernel name, e.g. "__catt_v1".
  std::string suffix;
  ir::Kernel kernel;
  analysis::ThrottlePlan plan;
  /// The launch cases this variant serves (indices into the input list).
  std::vector<std::size_t> cases;
};

struct VariantSet {
  std::string original_name;
  /// Throttled variants; launches whose plan is empty use the original.
  std::vector<Variant> variants;
  /// Case index -> variant index, or -1 for "use the original kernel".
  std::vector<int> case_to_variant;

  /// The kernel to invoke for `launch` (nullptr = original): exact match
  /// on grid/block dims against the anticipated cases.
  const ir::Kernel* select(const arch::LaunchConfig& launch,
                           const std::vector<LaunchCase>& cases) const;

  /// Host-side dispatch function source (CUDA-style), e.g. Figure-4-era
  /// code a build system would paste next to the generated kernels.
  std::string dispatch_source(const std::vector<LaunchCase>& cases) const;
};

/// Analyzes `kernel` under every anticipated launch case and builds the
/// deduplicated variant set. Cases whose analysis finds no contention map
/// to the original kernel.
VariantSet make_launch_variants(const arch::GpuArch& arch, const ir::Kernel& kernel,
                                const std::vector<LaunchCase>& cases,
                                const analysis::AnalysisOptions& opts = {});

}  // namespace catt::xform
