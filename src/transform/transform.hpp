// Source-to-source thread-throttling transforms (Section 4.3).
//
// Warp-level throttling (Figure 4): a contended loop is cloned into N
// guarded copies; copy g runs only for the warps whose id falls in the
// g-th group, with a `__syncthreads()` barrier after each copy so the
// groups execute in order. At any instant only warps_per_tb/N warps of a
// TB are inside the loop, shrinking the loop's live L1D footprint by N
// with no control divergence (guards are warp-uniform).
//
// TB-level throttling (Figure 5): a dummy `__shared__` array inflates the
// kernel's per-TB shared-memory usage so the occupancy calculation admits
// only the target number of TBs per SM. A store to the array keeps the
// allocation alive. This throttles the whole kernel, which is why the
// analyzer prefers warp-level first.
#pragma once

#include <cstddef>

#include "arch/gpu_arch.hpp"
#include "arch/launch.hpp"
#include "catt/analysis.hpp"
#include "ir/ir.hpp"

namespace catt::xform {

/// Name of the dummy array inserted by TB-level throttling.
inline constexpr const char* kDummySharedName = "catt_dummy_shared";

struct TransformResult {
  ir::Kernel kernel;
  int warp_split_loops = 0;       // loops split by warp-level throttling
  bool tb_applied = false;
  std::size_t dummy_shared_bytes = 0;
};

/// Splits the loop with `loop_id` into `n` warp groups. `n` must divide the
/// launch's warps-per-TB. Throws IrError if the loop is absent or `n` is
/// invalid. Loop ids are renumbered afterwards.
ir::Kernel apply_warp_throttle(const ir::Kernel& kernel, const arch::LaunchConfig& launch,
                               int loop_id, int n, int warp_size);

/// Caps resident TBs per SM at `target_tbs` by inserting a dummy shared
/// array (no-op if occupancy is already at or below the target).
ir::Kernel apply_tb_throttle(const arch::GpuArch& arch, const ir::Kernel& kernel,
                             const arch::LaunchConfig& launch, int target_tbs);

/// Applies a full analysis plan: every warp-level split plus the kernel-
/// wide TB limit.
TransformResult apply_plan(const arch::GpuArch& arch, const ir::Kernel& kernel,
                           const arch::LaunchConfig& launch, const analysis::ThrottlePlan& plan);

/// Builds the warp-id expression `linear_tid / warp_size` for the launch's
/// block shape (exposed for tests).
expr::ExprPtr warp_id_expr(const arch::Dim3& block, int warp_size);

}  // namespace catt::xform
