// Throttling policies and the application runner used by every experiment:
//
//   * Baseline — the unmodified kernels at maximum occupancy.
//   * CATT     — the paper's contribution: static analysis picks per-loop
//                (N, M); the source transform applies them.
//   * Fixed    — one (N, tb-limit) applied to every loop of every kernel,
//                via the same source transforms.
//   * BFTT     — best-fixed thread throttling (the paper's Best-SWL-style
//                baseline): exhaustively simulates every fixed factor and
//                keeps the fastest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "catt/analysis.hpp"
#include "gpusim/gpu.hpp"
#include "workloads/workload.hpp"

namespace catt::throttle {

/// The TLP chosen for one loop of one kernel, in the paper's
/// "(#warps_TB, #TBs)" notation (Table 3 cells).
struct LoopTlp {
  int loop_id = -1;
  int warps = 0;  // active warps per TB inside the loop
  int tbs = 0;    // resident TBs per SM
  bool unresolvable = false;
};

struct KernelChoice {
  std::string kernel;
  occupancy::Occupancy baseline_occ;
  std::vector<LoopTlp> loops;
};

struct AppResult {
  std::string workload;
  std::string policy;
  /// One entry per schedule item (repeats accumulated into it).
  std::vector<sim::KernelStats> launches;
  std::vector<KernelChoice> choices;
  std::int64_t total_cycles = 0;

  /// Access-weighted L1D hit rate over the whole application.
  double l1_hit_rate() const;
};

/// A fixed throttling factor: divide each TB's active warps by n_divisor
/// (clamped per kernel to a legal divisor) and cap resident TBs at
/// tb_limit (0 = uncapped).
struct FixedFactor {
  int n_divisor = 1;
  int tb_limit = 0;

  std::string str() const;
};

class Runner {
 public:
  explicit Runner(arch::GpuArch gpu_arch);

  AppResult run_baseline(const wl::Workload& w);
  AppResult run_catt(const wl::Workload& w, const analysis::AnalysisOptions& opts = {});
  AppResult run_fixed(const wl::Workload& w, const FixedFactor& f);

  /// Static analysis only (no simulation): the choices CATT would make.
  std::vector<KernelChoice> catt_choices(const wl::Workload& w,
                                         const analysis::AnalysisOptions& opts = {});

  /// Candidate fixed factors for a workload: every legal warp divisor
  /// crossed with every TB cap up to the baseline occupancy.
  std::vector<FixedFactor> candidate_factors(const wl::Workload& w);

  struct BfttOutcome {
    AppResult best;
    FixedFactor factor;
    /// (factor, total cycles) for every candidate — Figure 9's sweep.
    std::vector<std::pair<FixedFactor, std::int64_t>> sweep;
  };
  BfttOutcome run_bftt(const wl::Workload& w);

  /// DYNCTA-style *dynamic* thread throttling (Kayiran et al., the class
  /// of scheme Section 2.2 argues against): no code changes; the resident
  /// TB cap is adjusted reactively between launches based on the L1D hit
  /// rate observed in the previous launch. It needs warm-up launches to
  /// converge and reacts one phase late on multi-phase apps — exactly the
  /// weakness CATT's compile-time per-loop decisions avoid.
  AppResult run_dyncta(const wl::Workload& w, double low_hit = 0.60, double high_hit = 0.90);

  const arch::GpuArch& gpu_arch() const { return arch_; }

  /// Forwarded to every simulation (e.g. request-trace collection).
  sim::SimOptions sim_options;

 private:
  template <typename TransformFn>
  AppResult run_with(const wl::Workload& w, const std::string& policy, TransformFn&& fn);

  arch::GpuArch arch_;
};

}  // namespace catt::throttle
