// Throttling policies and the application runner used by every experiment.
//
// A policy describes *what to run*:
//
//   * Baseline — the unmodified kernels at maximum occupancy.
//   * Catt     — the paper's contribution: static analysis picks per-loop
//                (N, M); the source transform applies them.
//   * Fixed    — one (N, tb-limit) applied to every loop of every kernel,
//                via the same source transforms.
//   * Dyncta   — DYNCTA-style reactive TB capping (no code changes).
//   * Bftt     — best-fixed thread throttling (the paper's Best-SWL-style
//                baseline): exhaustively simulates every fixed factor and
//                keeps the fastest.
//   * Adaptive — CATT's static plan plus the runtime policy engine: the
//                transformed kernels run under the "adaptive" scheduler
//                policy, which corrects the static prior from observed
//                per-interval L1D behaviour (see src/policy/engine.hpp).
//
// Runner::run(workload, policy) is the single entry point. Execution goes
// through the exec:: engine: candidate simulations fan out across a thread
// pool and every per-launch result is memoized in a content-addressed
// SimCache, so repeated configurations (clamped duplicate factors, the
// baseline inside a sweep, CATT on untransformed workloads) are simulated
// exactly once per Runner. Results are bit-identical to serial execution.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "catt/analysis.hpp"
#include "exec/plan_service.hpp"
#include "exec/pool.hpp"
#include "exec/sim_cache.hpp"
#include "exec/sim_service.hpp"
#include "gpusim/gpu.hpp"
#include "workloads/workload.hpp"

namespace catt::throttle {

/// The TLP chosen for one loop of one kernel, in the paper's
/// "(#warps_TB, #TBs)" notation (Table 3 cells).
struct LoopTlp {
  int loop_id = -1;
  int warps = 0;  // active warps per TB inside the loop
  int tbs = 0;    // resident TBs per SM
  bool unresolvable = false;
};

struct KernelChoice {
  std::string kernel;
  occupancy::Occupancy baseline_occ;
  std::vector<LoopTlp> loops;
};

struct AppResult {
  std::string workload;
  /// Policy::label() of the policy that produced this result (BFTT winners
  /// carry the winning factor: "bftt[N=2,TB<=3]").
  std::string policy;
  /// One entry per schedule item (repeats accumulated into it).
  std::vector<sim::KernelStats> launches;
  std::vector<KernelChoice> choices;
  std::int64_t total_cycles = 0;

  /// Access-weighted L1D hit rate over the whole application.
  double l1_hit_rate() const;
};

/// A fixed throttling factor: divide each TB's active warps by n_divisor
/// (clamped per kernel to a legal divisor) and cap resident TBs at
/// tb_limit (0 = uncapped).
struct FixedFactor {
  int n_divisor = 1;
  int tb_limit = 0;

  std::string str() const;
};

// --- policy alternatives ---

struct Baseline {};

struct Catt {
  analysis::AnalysisOptions opts{};
};

struct Fixed {
  FixedFactor factor{};
};

/// DYNCTA-style *dynamic* thread throttling (Kayiran et al., the class of
/// scheme Section 2.2 argues against): no code changes; the resident TB cap
/// is adjusted reactively between launches based on the L1D hit rate
/// observed in the previous launch. It needs warm-up launches to converge
/// and reacts one phase late on multi-phase apps — exactly the weakness
/// CATT's compile-time per-loop decisions avoid.
struct Dyncta {
  double low_hit = 0.60;
  double high_hit = 0.90;
};

/// Exhaustive best-fixed search; run() returns the winner's AppResult.
/// Use Runner::bftt_sweep for the full per-candidate sweep (Figure 9).
struct Bftt {};

/// CATT's static plan with the adaptive policy engine closing the loop at
/// runtime: the same transformed kernels as Catt, simulated under
/// sched=adaptive. The static plan is the controller's prior; the
/// controller can only throttle *below* it (and relax back), so a window
/// of 0 degenerates to Catt exactly. `sched.kind` must be kAdaptive.
struct Adaptive {
  sim::sched::PolicyConfig sched = sim::sched::PolicyConfig::parse("adaptive");
  analysis::AnalysisOptions opts{};
};

/// Sum type over the six alternatives, with the canonical result label.
class Policy {
 public:
  using Variant = std::variant<Baseline, Catt, Fixed, Dyncta, Bftt, Adaptive>;

  Policy(Baseline p) : v_(p) {}
  Policy(Catt p) : v_(std::move(p)) {}
  Policy(Fixed p) : v_(p) {}
  Policy(Dyncta p) : v_(p) {}
  Policy(Bftt p) : v_(p) {}
  Policy(Adaptive p) : v_(std::move(p)) {}

  /// "baseline", "catt", "fixed[N=2,TB<=3]", "dyncta", "bftt", or
  /// "catt+adaptive".
  std::string label() const;

  const Variant& variant() const { return v_; }

  template <typename T>
  const T* get_if() const {
    return std::get_if<T>(&v_);
  }

 private:
  Variant v_;
};

class Runner {
 public:
  /// `pool` is the thread pool sweeps fan out on; defaults to the
  /// process-wide exec::Pool::shared() (sized by CATT_JOBS, see DESIGN.md).
  explicit Runner(arch::GpuArch gpu_arch, exec::Pool* pool = nullptr);

  /// Runs `w` under `policy`. The only non-deprecated run entry point.
  AppResult run(const wl::Workload& w, const Policy& policy);

  /// Static analysis only (no simulation): the choices CATT would make.
  std::vector<KernelChoice> catt_choices(const wl::Workload& w,
                                         const analysis::AnalysisOptions& opts = {}) const;

  /// Candidate fixed factors for a workload: every legal warp divisor
  /// crossed with every TB cap up to the baseline occupancy.
  std::vector<FixedFactor> candidate_factors(const wl::Workload& w) const;

  struct BfttOutcome {
    AppResult best;
    FixedFactor factor;
    /// (factor, total cycles) for every candidate — Figure 9's sweep.
    /// Candidate order is identical to candidate_factors(); parallel
    /// execution cannot reorder it (results are keyed by candidate index).
    std::vector<std::pair<FixedFactor, std::int64_t>> sweep;
    /// Distinct simulation plans among the candidates: duplicates (factors
    /// that clamp to the same per-kernel transforms) are simulated once.
    std::size_t unique_runs = 0;
  };

  /// The full BFTT sweep: every candidate factor, fanned out across the
  /// pool, deduplicated through the SimCache.
  BfttOutcome bftt_sweep(const wl::Workload& w);

  // --- deprecated forwarders (migrate to run(w, Policy)) ---

  [[deprecated("use run(w, Baseline{})")]] AppResult run_baseline(const wl::Workload& w) {
    return run(w, Baseline{});
  }
  [[deprecated("use run(w, Catt{opts})")]] AppResult run_catt(
      const wl::Workload& w, const analysis::AnalysisOptions& opts = {}) {
    return run(w, Catt{opts});
  }
  [[deprecated("use run(w, Fixed{f})")]] AppResult run_fixed(const wl::Workload& w,
                                                             const FixedFactor& f) {
    return run(w, Fixed{f});
  }
  [[deprecated("use run(w, Dyncta{low_hit, high_hit})")]] AppResult run_dyncta(
      const wl::Workload& w, double low_hit = 0.60, double high_hit = 0.90) {
    return run(w, Dyncta{low_hit, high_hit});
  }
  [[deprecated("use bftt_sweep(w) (or run(w, Bftt{}) for just the winner)")]] BfttOutcome
  run_bftt(const wl::Workload& w) {
    return bftt_sweep(w);
  }

  const arch::GpuArch& gpu_arch() const { return arch_; }

  /// Per-Runner memoization of launch simulations (hit/miss counters are
  /// exposed for tests and capacity planning). This is the L1 tier behind
  /// sim_service().
  const exec::SimCache& cache() const { return cache_; }
  exec::SimCache& cache() { return cache_; }

  /// Attaches the shared persistent tier to both services (null detaches).
  /// The caller keeps ownership; the DiskCache must outlive the Runner.
  void set_disk_cache(exec::DiskCache* disk) {
    service_.set_disk(disk);
    plans_.set_disk(disk);
  }

  /// stats_for service: launch stats through L1 (the SimCache) + disk.
  exec::SimService& sim_service() { return service_; }

  /// plan_for service: CATT analysis/plans, memoized, never simulating.
  exec::PlanService& plan_service() const { return plans_; }

  /// Forwarded to every simulation (e.g. request-trace collection).
  /// Changing it changes the cache key, so stale reuse cannot occur.
  sim::SimOptions sim_options;

 private:
  AppResult run_dyncta_impl(const wl::Workload& w, const Dyncta& p);

  arch::GpuArch arch_;
  exec::Pool* pool_;
  exec::SimCache cache_;
  exec::SimService service_{cache_};
  mutable exec::PlanService plans_{arch_};
};

}  // namespace catt::throttle
