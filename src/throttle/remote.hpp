// Daemon-facing throttle-layer pieces: the wire codec for AppResult (the
// aggregate a kOpRun response carries), the textual policy-spec round-trip
// the protocol uses to name policies, and RemoteRunner — a Runner-shaped
// convenience wrapper that answers run() queries from a catt_serve daemon
// instead of a local simulation.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "exec/client.hpp"
#include "throttle/runner.hpp"

namespace catt::throttle {

/// Wire codec for AppResult (field-by-field, little-endian; see
/// exec/wire.hpp for the encoding rules). Decoding throws catt::SimError
/// on malformed input.
std::string encode_app_result(const AppResult& r);
AppResult decode_app_result(std::string_view buf);

/// The protocol's textual policy naming, SpecParser-compatible:
/// "baseline", "bftt", "dyncta[:low=...,high=...]", "fixed:n=N[,tb=M]",
/// "catt[:conservative=0|1,warp_first=0|1,tb_level=0|1,dedupe=0|1,
/// min_warps=K]" (catt knobs emitted only when non-default), or
/// "adaptive:interval=...,window=...,..." (every scheduler knob spelled,
/// straight from sim::sched::PolicyConfig::str()).
std::string policy_to_spec(const Policy& policy);

/// Runner-shaped client: every run() is answered by the daemon, which
/// simulates at most once per distinct query across *all* connected
/// clients (single-flight + shared caches). The workload is named, not
/// shipped: both ends resolve it from the registry, so results are
/// byte-identical to a local Runner with the same arch/sched options.
class RemoteRunner {
 public:
  /// `arch_name` is "titan_v" or "titan_v_32k"; `sched_spec` as accepted
  /// by sim::sched::PolicyConfig::parse ("" = none).
  RemoteRunner(exec::Client& client, std::string arch_name, int num_sms,
               std::string sched_spec = "");

  AppResult run(const std::string& workload_name, const Policy& policy);

  /// One (workload, policy) query of a batched round-trip.
  struct Query {
    std::string workload;
    Policy policy;
  };

  /// Answers every query in ONE kOpRunv round-trip (results in query
  /// order). Against a daemon that predates kOpRunv the call transparently
  /// falls back to per-query run() — same results, more round-trips.
  std::vector<AppResult> run_batch(const std::vector<Query>& queries);

 private:
  exec::Client* client_;
  std::string arch_name_;
  int num_sms_;
  std::string sched_spec_;
  /// Set after a daemon rejects kOpRunv, so the fallback is paid once per
  /// RemoteRunner rather than once per batch.
  bool runv_unsupported_ = false;
};

}  // namespace catt::throttle
