#include "throttle/runner.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "common/error.hpp"
#include "common/log.hpp"
#include "transform/transform.hpp"

namespace catt::throttle {

double AppResult::l1_hit_rate() const {
  std::uint64_t hits = 0;
  std::uint64_t accesses = 0;
  for (const auto& k : launches) {
    hits += k.l1.hits;
    accesses += k.l1.accesses;
  }
  return accesses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(accesses);
}

std::string FixedFactor::str() const {
  return "N=" + std::to_string(n_divisor) +
         (tb_limit > 0 ? ",TB<=" + std::to_string(tb_limit) : "");
}

Runner::Runner(arch::GpuArch gpu_arch) : arch_(std::move(gpu_arch)) {}

namespace {

/// Largest divisor of `warps` that is <= n (so a requested factor stays
/// legal for kernels with fewer warps per TB).
int clamp_divisor(int warps, int n) {
  n = std::min(n, warps);
  while (n > 1 && warps % n != 0) --n;
  return std::max(1, n);
}

}  // namespace

template <typename TransformFn>
AppResult Runner::run_with(const wl::Workload& w, const std::string& policy, TransformFn&& fn) {
  AppResult res;
  res.workload = w.name;
  res.policy = policy;

  sim::DeviceMemory mem;
  w.setup(mem);
  sim::Gpu gpu(arch_, mem);

  for (const auto& entry : w.schedule) {
    const ir::Kernel& original = w.kernel(entry.kernel);
    KernelChoice choice;
    choice.kernel = entry.kernel;
    choice.baseline_occ = occupancy::compute(arch_, original, entry.launch);

    // fn returns the (possibly transformed) kernel and fills `choice`.
    ir::Kernel to_run = fn(original, entry, choice);

    sim::KernelStats agg;
    for (int r = 0; r < entry.repeats; ++r) {
      sim::LaunchSpec spec;
      spec.kernel = &to_run;
      spec.launch = entry.launch;
      spec.params = entry.params;
      sim::KernelStats s = gpu.run(spec, sim_options);
      if (r == 0) {
        agg = std::move(s);
      } else {
        agg.cycles += s.cycles;
        agg.l1 += s.l1;
        agg.l2 += s.l2;
        agg.dram_lines += s.dram_lines;
        agg.warp_insts += s.warp_insts;
        agg.mem_insts += s.mem_insts;
        agg.mem_requests += s.mem_requests;
      }
    }
    agg.kernel_name = entry.kernel;
    res.total_cycles += agg.cycles;
    res.launches.push_back(std::move(agg));
    res.choices.push_back(std::move(choice));
  }
  return res;
}

AppResult Runner::run_baseline(const wl::Workload& w) {
  return run_with(w, "baseline",
                  [&](const ir::Kernel& k, const wl::KernelRun& entry, KernelChoice& choice) {
                    (void)entry;
                    for (const ir::Stmt* loop : ir::collect_loops(k)) {
                      choice.loops.push_back({loop->loop_id, choice.baseline_occ.warps_per_tb,
                                              choice.baseline_occ.tbs_per_sm, false});
                    }
                    return k.clone();
                  });
}

std::vector<KernelChoice> Runner::catt_choices(const wl::Workload& w,
                                               const analysis::AnalysisOptions& opts) {
  std::vector<KernelChoice> out;
  for (const auto& entry : w.schedule) {
    const ir::Kernel& k = w.kernel(entry.kernel);
    const analysis::KernelAnalysis ka = analysis::analyze(arch_, k, entry.launch, entry.params, opts);
    KernelChoice choice;
    choice.kernel = entry.kernel;
    choice.baseline_occ = ka.occ;
    const int tbs = ka.plan.tb_limit > 0 ? ka.plan.tb_limit : ka.occ.tbs_per_sm;
    for (const auto& loop : ka.loops) {
      if (!loop.top_level) continue;
      choice.loops.push_back({loop.loop_id,
                              ka.occ.warps_per_tb / loop.decision.n_divisor,
                              loop.decision.unresolvable ? ka.occ.tbs_per_sm : tbs,
                              loop.decision.unresolvable});
    }
    out.push_back(std::move(choice));
  }
  return out;
}

AppResult Runner::run_catt(const wl::Workload& w, const analysis::AnalysisOptions& opts) {
  return run_with(
      w, "catt", [&](const ir::Kernel& k, const wl::KernelRun& entry, KernelChoice& choice) {
        const analysis::KernelAnalysis ka =
            analysis::analyze(arch_, k, entry.launch, entry.params, opts);
        const int tbs = ka.plan.tb_limit > 0 ? ka.plan.tb_limit : ka.occ.tbs_per_sm;
        for (const auto& loop : ka.loops) {
          if (!loop.top_level) continue;
          choice.loops.push_back({loop.loop_id,
                                  ka.occ.warps_per_tb / loop.decision.n_divisor,
                                  loop.decision.unresolvable ? ka.occ.tbs_per_sm : tbs,
                                  loop.decision.unresolvable});
        }
        xform::TransformResult tr = xform::apply_plan(arch_, k, entry.launch, ka.plan);
        return std::move(tr.kernel);
      });
}

AppResult Runner::run_fixed(const wl::Workload& w, const FixedFactor& f) {
  return run_with(
      w, "fixed[" + f.str() + "]",
      [&](const ir::Kernel& k, const wl::KernelRun& entry, KernelChoice& choice) {
        const int warps = choice.baseline_occ.warps_per_tb;
        const int n = clamp_divisor(warps, f.n_divisor);
        ir::Kernel out = k.clone();
        if (n > 1) {
          // Split every top-level loop; descending ids keep earlier ids valid.
          std::vector<int> ids;
          {
            analysis::AnalysisOptions aopts;
            const analysis::KernelAnalysis ka =
                analysis::analyze(arch_, k, entry.launch, entry.params, aopts);
            const auto loops = ir::collect_loops(k);
            for (const auto& loop : ka.loops) {
              if (!loop.top_level) continue;
              // Warp-splitting a loop that contains a barrier is illegal.
              if (ir::contains_sync(*loops[static_cast<std::size_t>(loop.loop_id)])) continue;
              ids.push_back(loop.loop_id);
            }
          }
          std::sort(ids.rbegin(), ids.rend());
          for (int id : ids) {
            out = xform::apply_warp_throttle(out, entry.launch, id, n, arch_.warp_size);
          }
        }
        int tbs = choice.baseline_occ.tbs_per_sm;
        if (f.tb_limit > 0 && f.tb_limit < tbs) {
          out = xform::apply_tb_throttle(arch_, out, entry.launch, f.tb_limit);
          tbs = f.tb_limit;
        }
        for (const ir::Stmt* loop : ir::collect_loops(k)) {
          choice.loops.push_back({loop->loop_id, warps / n, tbs, false});
        }
        return out;
      });
}

std::vector<FixedFactor> Runner::candidate_factors(const wl::Workload& w) {
  // Union of legal warp divisors and TB counts across the app's kernels.
  std::set<int> divisors;
  int max_tbs = 1;
  for (const auto& entry : w.schedule) {
    const occupancy::Occupancy occ =
        occupancy::compute(arch_, w.kernel(entry.kernel), entry.launch);
    for (int n = 1; n <= occ.warps_per_tb; ++n) {
      if (occ.warps_per_tb % n == 0) divisors.insert(n);
    }
    max_tbs = std::max(max_tbs, occ.tbs_per_sm);
  }

  // TB caps: geometric ladder plus TBs-1 (covers every Table 3 BFTT pick
  // while keeping the search affordable).
  std::set<int> tb_caps;
  if (max_tbs > 1) tb_caps.insert(max_tbs - 1);
  for (int tb = max_tbs / 2; tb >= 1; tb /= 2) tb_caps.insert(tb);

  std::vector<FixedFactor> out;
  for (int n : divisors) {
    out.push_back({n, 0});  // TB count unchanged
    for (auto it = tb_caps.rbegin(); it != tb_caps.rend(); ++it) out.push_back({n, *it});
  }
  return out;
}

AppResult Runner::run_dyncta(const wl::Workload& w, double low_hit, double high_hit) {
  AppResult res;
  res.workload = w.name;
  res.policy = "dyncta";

  sim::DeviceMemory mem;
  w.setup(mem);
  sim::Gpu gpu(arch_, mem);

  int tb_cap = 0;  // 0 = uncapped (start at full TLP, like DYNCTA's "all CTAs")
  // Hill-climbing memory per kernel: if the last adjustment made the same
  // kernel slower, revert it instead of following the hit-rate rule again.
  struct KernelState {
    int cap = 0;
    std::int64_t cycles = 0;
  };
  std::map<std::string, KernelState> history;
  for (const auto& entry : w.schedule) {
    const ir::Kernel& kernel = w.kernel(entry.kernel);
    KernelChoice choice;
    choice.kernel = entry.kernel;
    choice.baseline_occ = occupancy::compute(arch_, kernel, entry.launch);

    sim::KernelStats agg;
    for (int r = 0; r < entry.repeats; ++r) {
      sim::SimOptions opts = sim_options;
      opts.tb_cap = std::min(tb_cap > 0 ? tb_cap : choice.baseline_occ.tbs_per_sm,
                             choice.baseline_occ.tbs_per_sm);
      sim::LaunchSpec spec{&kernel, entry.launch, entry.params};
      sim::KernelStats s = gpu.run(spec, opts);

      // Reactive adjustment for the *next* launch (one phase late).
      const double hit = s.l1_hit_rate();
      const int current = s.occ.tbs_per_sm;
      KernelState& st = history[entry.kernel];
      if (st.cycles > 0 && current != st.cap && s.cycles > st.cycles) {
        // The last change regressed this kernel: undo it.
        tb_cap = st.cap;
      } else if (hit < low_hit && current > 1) {
        tb_cap = std::max(1, current / 2);
      } else if (hit > high_hit) {
        tb_cap = std::min(choice.baseline_occ.tbs_per_sm, current * 2);
      } else {
        tb_cap = current;
      }
      st = {current, s.cycles};

      choice.loops.push_back({r, s.occ.warps_per_tb, s.occ.tbs_per_sm, false});
      if (r == 0) {
        agg = std::move(s);
      } else {
        agg.cycles += s.cycles;
        agg.l1 += s.l1;
        agg.l2 += s.l2;
        agg.dram_lines += s.dram_lines;
        agg.warp_insts += s.warp_insts;
        agg.mem_insts += s.mem_insts;
        agg.mem_requests += s.mem_requests;
      }
    }
    agg.kernel_name = entry.kernel;
    res.total_cycles += agg.cycles;
    res.launches.push_back(std::move(agg));
    res.choices.push_back(std::move(choice));
  }
  return res;
}

Runner::BfttOutcome Runner::run_bftt(const wl::Workload& w) {
  BfttOutcome outcome;
  std::int64_t best_cycles = std::numeric_limits<std::int64_t>::max();
  for (const FixedFactor& f : candidate_factors(w)) {
    AppResult r = run_fixed(w, f);
    outcome.sweep.emplace_back(f, r.total_cycles);
    log::debug("bftt ", w.name, " ", f.str(), " -> ", r.total_cycles, " cycles");
    if (r.total_cycles < best_cycles) {
      best_cycles = r.total_cycles;
      outcome.factor = f;
      outcome.best = std::move(r);
    }
  }
  outcome.best.policy = "bftt[" + outcome.factor.str() + "]";
  return outcome;
}

}  // namespace catt::throttle
