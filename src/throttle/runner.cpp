#include "throttle/runner.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "exec/cache_key.hpp"
#include "exec/sweep.hpp"
#include "gpusim/bytecode.hpp"
#include "transform/transform.hpp"

namespace catt::throttle {

double AppResult::l1_hit_rate() const {
  std::uint64_t hits = 0;
  std::uint64_t accesses = 0;
  for (const auto& k : launches) {
    hits += k.l1.hits;
    accesses += k.l1.accesses;
  }
  return accesses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(accesses);
}

std::string FixedFactor::str() const {
  return "N=" + std::to_string(n_divisor) +
         (tb_limit > 0 ? ",TB<=" + std::to_string(tb_limit) : "");
}

std::string Policy::label() const {
  struct Visitor {
    std::string operator()(const Baseline&) const { return "baseline"; }
    std::string operator()(const Catt&) const { return "catt"; }
    std::string operator()(const Fixed& p) const { return "fixed[" + p.factor.str() + "]"; }
    std::string operator()(const Dyncta&) const { return "dyncta"; }
    std::string operator()(const Bftt&) const { return "bftt"; }
    std::string operator()(const Adaptive&) const { return "catt+adaptive"; }
  };
  return std::visit(Visitor{}, v_);
}

Runner::Runner(arch::GpuArch gpu_arch, exec::Pool* pool)
    : arch_(std::move(gpu_arch)), pool_(pool != nullptr ? pool : &exec::Pool::shared()) {}

namespace {

/// Largest divisor of `warps` that is <= n (so a requested factor stays
/// legal for kernels with fewer warps per TB).
int clamp_divisor(int warps, int n) {
  n = std::min(n, warps);
  while (n > 1 && warps % n != 0) --n;
  return std::max(1, n);
}

/// One schedule entry of a fully-resolved execution plan: the transformed
/// kernel, the recorded TLP choice, and the entry's chained cache key.
struct PlanEntry {
  ir::Kernel kernel;
  const wl::KernelRun* run = nullptr;
  KernelChoice choice;
  std::uint64_t key = 0;
  /// Trace-dedup cache key: (kernel, launch, params) fingerprints, without
  /// the chain prefix — repeats and identical re-launches share it.
  std::uint64_t trace_key = 0;
};

/// What a policy resolves a workload to before any simulation happens.
/// `chain` (the last entry's key) identifies the whole plan: two plans with
/// equal chains simulate identically (see exec/sim_cache.hpp).
struct RunPlan {
  std::vector<PlanEntry> entries;
  std::uint64_t chain = 0;
  /// True when every entry's kernel is trace-data-independent — the
  /// soundness condition for simulating the whole app without functional
  /// memory effects (one impure kernel anywhere makes every earlier
  /// write observable, so the flag is all-or-nothing per plan).
  bool all_pure = true;
};

/// Stats of one executed plan; launches are in schedule order.
struct RunOutput {
  std::vector<sim::KernelStats> launches;
  std::int64_t total_cycles = 0;
};

/// Builds the plan for `w` by applying `fn` to every schedule entry.
/// fn(original, entry, choice) returns the (possibly transformed) kernel
/// and fills `choice`, exactly like the old Runner::run_with callback.
template <typename TransformFn>
RunPlan make_plan(const arch::GpuArch& arch, const sim::SimOptions& sim_options,
                  const wl::Workload& w, TransformFn&& fn) {
  RunPlan plan;
  plan.entries.reserve(w.schedule.size());
  // Chain seed: everything launch-independent a simulation depends on —
  // the engine version (via CacheKey's salt), the architecture, the sim
  // options, and the workload's initial memory image (identified by the
  // workload name; inputs are deterministic).
  std::uint64_t chain =
      exec::CacheKey{}.gpu_arch(arch).sim_options(sim_options).str(w.name).value();
  for (const auto& entry : w.schedule) {
    const ir::Kernel& original = w.kernel(entry.kernel);
    PlanEntry pe;
    pe.run = &entry;
    pe.choice.kernel = entry.kernel;
    pe.choice.baseline_occ = occupancy::compute(arch, original, entry.launch);
    pe.kernel = fn(original, entry, pe.choice);
    const std::uint64_t kfp = exec::CacheKey{}.kernel(pe.kernel).value();
    const std::uint64_t lfp = exec::CacheKey{}.launch(entry.launch).value();
    const std::uint64_t pfp = exec::CacheKey{}.params(entry.params).value();
    chain = exec::CacheKey{}.chain(chain).u64(kfp).u64(lfp).u64(pfp).i32(entry.repeats).value();
    pe.key = chain;
    pe.trace_key = exec::CacheKey{}.u64(kfp).u64(lfp).u64(pfp).value();
    if (pe.trace_key == 0) pe.trace_key = 1;  // 0 means "dedup off" in SimOptions
    plan.all_pure = plan.all_pure && sim::bc::trace_data_independent(pe.kernel);
    plan.entries.push_back(std::move(pe));
  }
  plan.chain = chain;
  return plan;
}

/// Simulates one schedule entry (all repeats) and aggregates its stats.
sim::KernelStats simulate_entry(sim::Gpu& gpu, const PlanEntry& pe,
                                const sim::SimOptions& opts) {
  const wl::KernelRun& entry = *pe.run;
  sim::KernelStats agg;
  for (int r = 0; r < entry.repeats; ++r) {
    sim::LaunchSpec spec;
    spec.kernel = &pe.kernel;
    spec.launch = entry.launch;
    spec.params = entry.params;
    sim::KernelStats s = gpu.run(spec, opts);
    if (r == 0) {
      agg = std::move(s);
    } else {
      agg.cycles += s.cycles;
      agg.l1 += s.l1;
      agg.l2 += s.l2;
      agg.dram_lines += s.dram_lines;
      agg.warp_insts += s.warp_insts;
      agg.mem_insts += s.mem_insts;
      agg.mem_requests += s.mem_requests;
    }
  }
  agg.kernel_name = entry.kernel;
  return agg;
}

/// Executes a plan through the sim service: if every chained key resolves
/// (from the in-process L1 or the attached disk tier) the run is assembled
/// without simulating (one hit per launch, atomically — see
/// SimCache::lookup_run); otherwise the whole application is simulated
/// from a fresh memory image and each launch's stats are published to
/// every tier (one miss per launch). Thread-safe: callers on different
/// pool threads each build their own Gpu + DeviceMemory.
RunOutput run_plan_cached(const arch::GpuArch& arch, const sim::SimOptions& sim_options,
                          exec::SimService& service, const wl::Workload& w,
                          const RunPlan& plan) {
  RunOutput out;
  std::vector<std::uint64_t> keys;
  keys.reserve(plan.entries.size());
  for (const auto& pe : plan.entries) keys.push_back(pe.key);
  if (auto cached = service.assemble(keys); cached.has_value()) {
    out.launches = std::move(*cached);
    for (const auto& launch : out.launches) out.total_cycles += launch.cycles;
    return out;
  }

  sim::DeviceMemory mem;
  w.setup(mem);
  sim::Gpu gpu(arch, mem);
  out.launches.reserve(plan.entries.size());
  for (const auto& pe : plan.entries) {
    sim::SimOptions entry_opts = sim_options;
    if (plan.all_pure) {
      // No kernel's trace depends on loaded values and nothing downstream
      // reads the memory image, so functional execution is skipped and
      // repeated launches replay block-parametric traces. These switches
      // are excluded from SimOptions::fingerprint(): outputs are
      // bit-identical either way.
      entry_opts.skip_functional = true;
      entry_opts.trace_key = pe.trace_key;
    }
    sim::KernelStats agg = simulate_entry(gpu, pe, entry_opts);
    service.publish(pe.key, agg);
    out.total_cycles += agg.cycles;
    out.launches.push_back(std::move(agg));
  }
  return out;
}

AppResult assemble(const wl::Workload& w, const RunPlan& plan, RunOutput output,
                   std::string policy_label) {
  AppResult res;
  res.workload = w.name;
  res.policy = std::move(policy_label);
  res.launches = std::move(output.launches);
  res.total_cycles = output.total_cycles;
  res.choices.reserve(plan.entries.size());
  for (const auto& pe : plan.entries) res.choices.push_back(pe.choice);
  return res;
}

RunPlan make_baseline_plan(const arch::GpuArch& arch, const sim::SimOptions& sim_options,
                           const wl::Workload& w) {
  return make_plan(arch, sim_options, w,
                   [&](const ir::Kernel& k, const wl::KernelRun& entry, KernelChoice& choice) {
                     (void)entry;
                     for (const ir::Stmt* loop : ir::collect_loops(k)) {
                       choice.loops.push_back({loop->loop_id, choice.baseline_occ.warps_per_tb,
                                               choice.baseline_occ.tbs_per_sm, false});
                     }
                     return k.clone();
                   });
}

RunPlan make_catt_plan(const arch::GpuArch& arch, const sim::SimOptions& sim_options,
                       exec::PlanService& plans, const wl::Workload& w,
                       const analysis::AnalysisOptions& opts) {
  return make_plan(
      arch, sim_options, w,
      [&](const ir::Kernel& k, const wl::KernelRun& entry, KernelChoice& choice) {
        const analysis::KernelAnalysis ka =
            plans.analysis_for(k, entry.launch, entry.params, opts);
        const int tbs = ka.plan.tb_limit > 0 ? ka.plan.tb_limit : ka.occ.tbs_per_sm;
        for (const auto& loop : ka.loops) {
          if (!loop.top_level) continue;
          choice.loops.push_back({loop.loop_id,
                                  ka.occ.warps_per_tb / loop.decision.n_divisor,
                                  loop.decision.unresolvable ? ka.occ.tbs_per_sm : tbs,
                                  loop.decision.unresolvable});
        }
        xform::TransformResult tr = xform::apply_plan(arch, k, entry.launch, ka.plan);
        return std::move(tr.kernel);
      });
}

RunPlan make_fixed_plan(const arch::GpuArch& arch, const sim::SimOptions& sim_options,
                        exec::PlanService& plans, const wl::Workload& w,
                        const FixedFactor& f) {
  return make_plan(
      arch, sim_options, w,
      [&](const ir::Kernel& k, const wl::KernelRun& entry, KernelChoice& choice) {
        const int warps = choice.baseline_occ.warps_per_tb;
        const int n = clamp_divisor(warps, f.n_divisor);
        ir::Kernel out = k.clone();
        if (n > 1) {
          // Split every top-level loop; descending ids keep earlier ids valid.
          std::vector<int> ids;
          {
            analysis::AnalysisOptions aopts;
            const analysis::KernelAnalysis ka =
                plans.analysis_for(k, entry.launch, entry.params, aopts);
            const auto loops = ir::collect_loops(k);
            for (const auto& loop : ka.loops) {
              if (!loop.top_level) continue;
              // Warp-splitting a loop that contains a barrier is illegal.
              if (ir::contains_sync(*loops[static_cast<std::size_t>(loop.loop_id)])) continue;
              ids.push_back(loop.loop_id);
            }
          }
          std::sort(ids.rbegin(), ids.rend());
          for (int id : ids) {
            out = xform::apply_warp_throttle(out, entry.launch, id, n, arch.warp_size);
          }
        }
        int tbs = choice.baseline_occ.tbs_per_sm;
        if (f.tb_limit > 0 && f.tb_limit < tbs) {
          out = xform::apply_tb_throttle(arch, out, entry.launch, f.tb_limit);
          tbs = f.tb_limit;
        }
        for (const ir::Stmt* loop : ir::collect_loops(k)) {
          choice.loops.push_back({loop->loop_id, warps / n, tbs, false});
        }
        return out;
      });
}

}  // namespace

std::vector<KernelChoice> Runner::catt_choices(const wl::Workload& w,
                                               const analysis::AnalysisOptions& opts) const {
  std::vector<KernelChoice> out;
  for (const auto& entry : w.schedule) {
    const ir::Kernel& k = w.kernel(entry.kernel);
    const analysis::KernelAnalysis ka = plans_.analysis_for(k, entry.launch, entry.params, opts);
    KernelChoice choice;
    choice.kernel = entry.kernel;
    choice.baseline_occ = ka.occ;
    const int tbs = ka.plan.tb_limit > 0 ? ka.plan.tb_limit : ka.occ.tbs_per_sm;
    for (const auto& loop : ka.loops) {
      if (!loop.top_level) continue;
      choice.loops.push_back({loop.loop_id,
                              ka.occ.warps_per_tb / loop.decision.n_divisor,
                              loop.decision.unresolvable ? ka.occ.tbs_per_sm : tbs,
                              loop.decision.unresolvable});
    }
    out.push_back(std::move(choice));
  }
  return out;
}

std::vector<FixedFactor> Runner::candidate_factors(const wl::Workload& w) const {
  // Union of legal warp divisors and TB counts across the app's kernels.
  std::set<int> divisors;
  int max_tbs = 1;
  for (const auto& entry : w.schedule) {
    const occupancy::Occupancy occ =
        occupancy::compute(arch_, w.kernel(entry.kernel), entry.launch);
    for (int n = 1; n <= occ.warps_per_tb; ++n) {
      if (occ.warps_per_tb % n == 0) divisors.insert(n);
    }
    max_tbs = std::max(max_tbs, occ.tbs_per_sm);
  }

  // TB caps: geometric ladder plus TBs-1 (covers every Table 3 BFTT pick
  // while keeping the search affordable).
  std::set<int> tb_caps;
  if (max_tbs > 1) tb_caps.insert(max_tbs - 1);
  for (int tb = max_tbs / 2; tb >= 1; tb /= 2) tb_caps.insert(tb);

  std::vector<FixedFactor> out;
  for (int n : divisors) {
    out.push_back({n, 0});  // TB count unchanged
    for (auto it = tb_caps.rbegin(); it != tb_caps.rend(); ++it) out.push_back({n, *it});
  }
  return out;
}

AppResult Runner::run(const wl::Workload& w, const Policy& policy) {
  struct Visitor {
    Runner& self;
    const wl::Workload& w;
    const Policy& policy;

    AppResult cached(const RunPlan& plan) const {
      return assemble(w, plan,
                      run_plan_cached(self.arch_, self.sim_options, self.service_, w, plan),
                      policy.label());
    }

    AppResult operator()(const Baseline&) const {
      return cached(make_baseline_plan(self.arch_, self.sim_options, w));
    }
    AppResult operator()(const Catt& p) const {
      return cached(make_catt_plan(self.arch_, self.sim_options, self.plans_, w, p.opts));
    }
    AppResult operator()(const Fixed& p) const {
      return cached(make_fixed_plan(self.arch_, self.sim_options, self.plans_, w, p.factor));
    }
    AppResult operator()(const Dyncta& p) const { return self.run_dyncta_impl(w, p); }
    AppResult operator()(const Bftt&) const { return self.bftt_sweep(w).best; }
    AppResult operator()(const Adaptive& p) const {
      // Same transformed kernels as Catt, simulated under the adaptive
      // scheduler policy. The per-policy SimOptions copy flows into the
      // plan's chain seed, so adaptive runs get their own cache identity.
      sim::SimOptions o = self.sim_options;
      o.sched = p.sched;
      const RunPlan plan = make_catt_plan(self.arch_, o, self.plans_, w, p.opts);
      return assemble(w, plan, run_plan_cached(self.arch_, o, self.service_, w, plan),
                      policy.label());
    }
  };
  return std::visit(Visitor{*this, w, policy}, policy.variant());
}

Runner::BfttOutcome Runner::bftt_sweep(const wl::Workload& w) {
  const std::vector<FixedFactor> cands = candidate_factors(w);

  // Resolve every candidate to its plan (analysis + transform only; no
  // simulation) and group candidates whose plans are identical — factors
  // that clamp to the same per-kernel transforms simulate identically.
  std::vector<RunPlan> plans;
  plans.reserve(cands.size());
  for (const FixedFactor& f : cands) {
    plans.push_back(make_fixed_plan(arch_, sim_options, plans_, w, f));
  }
  std::vector<std::size_t> group_of(cands.size());
  std::vector<std::size_t> rep;  // group -> representative candidate index
  {
    std::unordered_map<std::uint64_t, std::size_t> by_chain;
    for (std::size_t i = 0; i < plans.size(); ++i) {
      auto [it, fresh] = by_chain.try_emplace(plans[i].chain, rep.size());
      if (fresh) rep.push_back(i);
      group_of[i] = it->second;
    }
  }

  // Fan the distinct plans out across the pool. Results land in a vector
  // keyed by group index, so collection order is independent of thread
  // scheduling and the outcome is bit-identical to a serial sweep.
  std::vector<RunOutput> outputs(rep.size());
  exec::SweepEngine engine(*pool_);
  engine.for_each(rep.size(), [&](std::size_t g) {
    outputs[g] = run_plan_cached(arch_, sim_options, service_, w, plans[rep[g]]);
  });

  BfttOutcome outcome;
  outcome.unique_runs = rep.size();
  outcome.sweep.reserve(cands.size());
  std::int64_t best_cycles = std::numeric_limits<std::int64_t>::max();
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    const std::int64_t cycles = outputs[group_of[i]].total_cycles;
    outcome.sweep.emplace_back(cands[i], cycles);
    log::debug("bftt ", w.name, " ", cands[i].str(), " -> ", cycles, " cycles");
    // Strict '<' keeps the first minimum in candidate order — the same
    // winner a serial sweep picks.
    if (cycles < best_cycles) {
      best_cycles = cycles;
      best_i = i;
    }
  }
  outcome.factor = cands[best_i];
  outcome.best = assemble(w, plans[best_i], std::move(outputs[group_of[best_i]]),
                          "bftt[" + outcome.factor.str() + "]");
  return outcome;
}

AppResult Runner::run_dyncta_impl(const wl::Workload& w, const Dyncta& p) {
  AppResult res;
  res.workload = w.name;
  res.policy = Policy(p).label();

  sim::DeviceMemory mem;
  w.setup(mem);
  sim::Gpu gpu(arch_, mem);

  int tb_cap = 0;  // 0 = uncapped (start at full TLP, like DYNCTA's "all CTAs")
  // Hill-climbing memory per kernel: if the last adjustment made the same
  // kernel slower, revert it instead of following the hit-rate rule again.
  struct KernelState {
    int cap = 0;
    std::int64_t cycles = 0;
  };
  std::map<std::string, KernelState> history;
  for (const auto& entry : w.schedule) {
    const ir::Kernel& kernel = w.kernel(entry.kernel);
    KernelChoice choice;
    choice.kernel = entry.kernel;
    choice.baseline_occ = occupancy::compute(arch_, kernel, entry.launch);

    sim::KernelStats agg;
    for (int r = 0; r < entry.repeats; ++r) {
      sim::SimOptions opts = sim_options;
      opts.tb_cap = std::min(tb_cap > 0 ? tb_cap : choice.baseline_occ.tbs_per_sm,
                             choice.baseline_occ.tbs_per_sm);
      sim::LaunchSpec spec{&kernel, entry.launch, entry.params};
      sim::KernelStats s = gpu.run(spec, opts);

      // Reactive adjustment for the *next* launch (one phase late).
      const double hit = s.l1_hit_rate();
      const int current = s.occ.tbs_per_sm;
      KernelState& st = history[entry.kernel];
      if (st.cycles > 0 && current != st.cap && s.cycles > st.cycles) {
        // The last change regressed this kernel: undo it.
        tb_cap = st.cap;
      } else if (hit < p.low_hit && current > 1) {
        tb_cap = std::max(1, current / 2);
      } else if (hit > p.high_hit) {
        tb_cap = std::min(choice.baseline_occ.tbs_per_sm, current * 2);
      } else {
        tb_cap = current;
      }
      st = {current, s.cycles};

      choice.loops.push_back({r, s.occ.warps_per_tb, s.occ.tbs_per_sm, false});
      if (r == 0) {
        agg = std::move(s);
      } else {
        agg.cycles += s.cycles;
        agg.l1 += s.l1;
        agg.l2 += s.l2;
        agg.dram_lines += s.dram_lines;
        agg.warp_insts += s.warp_insts;
        agg.mem_insts += s.mem_insts;
        agg.mem_requests += s.mem_requests;
      }
    }
    agg.kernel_name = entry.kernel;
    res.total_cycles += agg.cycles;
    res.launches.push_back(std::move(agg));
    res.choices.push_back(std::move(choice));
  }
  return res;
}

}  // namespace catt::throttle
