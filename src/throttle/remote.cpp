#include "throttle/remote.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/error.hpp"
#include "exec/wire.hpp"

namespace catt::throttle {
namespace {

namespace wire = exec::wire;

void encode_choice(wire::Writer& w, const KernelChoice& c) {
  w.str(c.kernel);
  wire::encode(w, c.baseline_occ);
  w.u64(c.loops.size());
  for (const LoopTlp& l : c.loops) {
    w.i32(l.loop_id);
    w.i32(l.warps);
    w.i32(l.tbs);
    w.b(l.unresolvable);
  }
}

KernelChoice decode_choice(wire::Reader& r) {
  KernelChoice c;
  c.kernel = r.str();
  c.baseline_occ = wire::decode_occupancy(r);
  const std::uint64_t n = r.u64();
  c.loops.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    LoopTlp l;
    l.loop_id = r.i32();
    l.warps = r.i32();
    l.tbs = r.i32();
    l.unresolvable = r.b();
    c.loops.push_back(l);
  }
  return c;
}

/// Shortest decimal that round-trips the double (for spec strings).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Body-only decode (no trailing-bytes check), so a kOpRunv response can
/// be decoded as `count` results back to back from one Reader.
AppResult decode_app_result_body(wire::Reader& r) {
  AppResult res;
  res.workload = r.str();
  res.policy = r.str();
  res.total_cycles = r.i64();
  const std::uint64_t n_launches = r.u64();
  res.launches.reserve(n_launches);
  for (std::uint64_t i = 0; i < n_launches; ++i) {
    res.launches.push_back(wire::decode_kernel_stats(r));
  }
  const std::uint64_t n_choices = r.u64();
  res.choices.reserve(n_choices);
  for (std::uint64_t i = 0; i < n_choices; ++i) res.choices.push_back(decode_choice(r));
  return res;
}

}  // namespace

std::string encode_app_result(const AppResult& r) {
  wire::Writer w;
  w.str(r.workload);
  w.str(r.policy);
  w.i64(r.total_cycles);
  w.u64(r.launches.size());
  for (const sim::KernelStats& s : r.launches) wire::encode(w, s);
  w.u64(r.choices.size());
  for (const KernelChoice& c : r.choices) encode_choice(w, c);
  return w.take();
}

AppResult decode_app_result(std::string_view buf) {
  wire::Reader r(buf);
  AppResult res = decode_app_result_body(r);
  r.expect_done("AppResult");
  return res;
}

std::string policy_to_spec(const Policy& policy) {
  struct Visitor {
    std::string operator()(const Baseline&) const { return "baseline"; }
    std::string operator()(const Catt& p) const {
      const analysis::AnalysisOptions d;
      std::string knobs;
      auto add = [&](const std::string& kv) {
        knobs += (knobs.empty() ? ":" : ",") + kv;
      };
      if (p.opts.conservative_irregular != d.conservative_irregular) {
        add("conservative=" + std::to_string(p.opts.conservative_irregular ? 1 : 0));
      }
      if (p.opts.warp_level_first != d.warp_level_first) {
        add("warp_first=" + std::to_string(p.opts.warp_level_first ? 1 : 0));
      }
      if (p.opts.enable_tb_level != d.enable_tb_level) {
        add("tb_level=" + std::to_string(p.opts.enable_tb_level ? 1 : 0));
      }
      if (p.opts.dedupe_tb_footprint != d.dedupe_tb_footprint) {
        add("dedupe=" + std::to_string(p.opts.dedupe_tb_footprint ? 1 : 0));
      }
      if (p.opts.min_active_warps != d.min_active_warps) {
        add("min_warps=" + std::to_string(p.opts.min_active_warps));
      }
      return "catt" + knobs;
    }
    std::string operator()(const Fixed& p) const {
      std::string spec = "fixed:n=" + std::to_string(p.factor.n_divisor);
      if (p.factor.tb_limit > 0) spec += ",tb=" + std::to_string(p.factor.tb_limit);
      return spec;
    }
    std::string operator()(const Dyncta& p) const {
      return "dyncta:low=" + fmt_double(p.low_hit) + ",high=" + fmt_double(p.high_hit);
    }
    std::string operator()(const Bftt&) const { return "bftt"; }
    std::string operator()(const Adaptive& p) const {
      // PolicyConfig::str() spells every knob, so the spec round-trips
      // through PolicyConfig::parse on the server byte-exactly. Analysis
      // options ride at their defaults (adaptive always seeds from the
      // default static CATT plan over the wire).
      return p.sched.str();
    }
  };
  return std::visit(Visitor{}, policy.variant());
}

RemoteRunner::RemoteRunner(exec::Client& client, std::string arch_name, int num_sms,
                           std::string sched_spec)
    : client_(&client),
      arch_name_(std::move(arch_name)),
      num_sms_(num_sms),
      sched_spec_(std::move(sched_spec)) {}

AppResult RemoteRunner::run(const std::string& workload_name, const Policy& policy) {
  wire::Writer req;
  req.str(workload_name);
  req.u32(static_cast<std::uint32_t>(num_sms_));
  req.str(arch_name_);
  req.str(policy_to_spec(policy));
  req.str(sched_spec_);
  return decode_app_result(client_->call(exec::rpc::kOpRun, req.buffer()));
}

std::vector<AppResult> RemoteRunner::run_batch(const std::vector<Query>& queries) {
  std::vector<AppResult> out;
  out.reserve(queries.size());
  if (queries.empty()) return out;
  if (!runv_unsupported_) {
    wire::Writer req;
    req.u32(static_cast<std::uint32_t>(queries.size()));
    for (const Query& q : queries) {
      req.str(q.workload);
      req.u32(static_cast<std::uint32_t>(num_sms_));
      req.str(arch_name_);
      req.str(policy_to_spec(q.policy));
      req.str(sched_spec_);
    }
    try {
      const std::string resp = client_->call(exec::rpc::kOpRunv, req.buffer());
      wire::Reader r(resp);
      for (std::size_t i = 0; i < queries.size(); ++i) {
        out.push_back(decode_app_result_body(r));
      }
      r.expect_done("runv response");
      return out;
    } catch (const SimError& e) {
      // Only an "unknown op" rejection means the daemon predates kOpRunv;
      // anything else (workload/policy errors, truncation) is real.
      if (std::string_view(e.what()).find("unknown op") == std::string_view::npos) throw;
      runv_unsupported_ = true;
      out.clear();
    }
  }
  for (const Query& q : queries) out.push_back(run(q.workload, q.policy));
  return out;
}

}  // namespace catt::throttle
