// GPU architecture descriptions: the static hardware parameters the CATT
// analysis (occupancy, footprint vs. L1D capacity) and the simulator consume.
//
// The default machine mirrors the paper's Nvidia Titan V (Volta, Table 1),
// with the SM count scaled down for simulation (SMs are homogeneous and the
// L1D is per-SM, so per-SM contention behaviour is representative).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace catt::arch {

/// Timing parameters for the simulator's memory hierarchy (cycles).
struct MemoryTiming {
  int l1_hit_latency = 28;
  int l2_hit_latency = 190;
  int dram_latency = 375;
  /// Minimum cycles between transaction issues per LSU group — divergent
  /// (many-transaction) memory instructions serialize here.
  int lsu_issue_interval = 1;
  /// L2 bandwidth: minimum cycles between L2 services (shared by all SMs).
  int l2_service_interval = 2;
  /// DRAM bandwidth expressed as minimum cycles per 32 B sector fill.
  /// Volta fetches 32 B sectors on miss, so a fully divergent access costs
  /// 1/4 of a coalesced line in bandwidth. Calibrated to a 2-SM slice of
  /// Titan V: 650 GB/s / 80 SMs * 2 SMs ~= 11 B/cycle ~= one 32 B sector
  /// every ~3 cycles (a full 128 B line ~= 12 cycles).
  int dram_sector_interval = 3;
};

/// Static description of the modeled GPU.
struct GpuArch {
  std::string name;

  // --- SIMT geometry ---
  int num_sms = 4;
  int warp_size = 32;
  int max_warps_per_sm = 64;
  int max_tbs_per_sm = 32;
  int max_threads_per_tb = 1024;

  // --- Per-SM storage ---
  std::size_t register_file_bytes = 256 * 1024;
  /// Unified on-chip memory split between L1D and shared memory (Volta).
  /// For split-cache architectures (Pascal/Maxwell) this is l1d + smem fixed.
  std::size_t unified_cache_bytes = 128 * 1024;
  bool unified_l1_shared = true;
  /// Legal shared-memory carve-outs (bytes), ascending. Volta: 0..96 KB.
  std::vector<std::size_t> shared_carveouts;
  /// Fixed sizes used when unified_l1_shared == false.
  std::size_t fixed_l1d_bytes = 24 * 1024;
  std::size_t fixed_shared_bytes = 96 * 1024;

  // --- Cache geometry ---
  int line_bytes = 128;
  int sector_bytes = 32;
  int l1_assoc = 32;  // Volta's L1 behaves near-fully-associative
  int l1_mshrs = 128;
  /// L2 capacity for the simulated slice. Titan V's 4.5 MB serves 80 SMs;
  /// a 2-SM slice gets a proportional ~512 KB so the L1-vs-L2-vs-DRAM
  /// balance matches the real machine's per-SM ratios.
  std::size_t l2_bytes = 512 * 1024;
  int l2_assoc = 16;

  // --- Scheduling ---
  int schedulers_per_sm = 4;

  MemoryTiming timing;

  /// L1D capacity when `shared_bytes` of the unified space is carved out for
  /// shared memory. For split architectures, returns the fixed L1D size.
  std::size_t l1d_bytes_for_carveout(std::size_t shared_bytes) const;

  /// Smallest legal carve-out >= `shared_bytes_needed` (Section 4.1:
  /// "the smallest configurable option that is greater than or equal to
  /// USE_shm_SM so as to maximize the TLP"). Throws SimError if the need
  /// exceeds the largest carve-out.
  std::size_t smallest_carveout_for(std::size_t shared_bytes_needed) const;

  /// The paper's Titan V (Volta) at simulation scale. `num_sms` defaults to
  /// a small value for simulation speed; the real card has 80.
  static GpuArch titan_v(int num_sms = 2);

  /// A split-cache previous-generation device (Pascal-like) used by the
  /// Section 5.1.3 sensitivity discussion: small fixed L1D.
  static GpuArch pascal_like(int num_sms = 2);

  /// Titan V with the L1D forced to 32 KB (Figure 10 configuration):
  /// the unified space is restricted so at most 32 KB serves as L1D.
  static GpuArch titan_v_32k_l1d(int num_sms = 2);

  /// Maximum L1D capacity attainable with zero shared-memory usage.
  std::size_t max_l1d_bytes() const { return l1d_bytes_for_carveout(0); }

  /// Optional cap on the L1D carve-out result (0 = uncapped); used to model
  /// the 32 KB-L1D configuration of Figure 10.
  std::size_t l1d_cap_bytes = 0;

  /// Stable content hash over every simulation-relevant field (including
  /// timing and carve-outs). Part of the exec::SimCache key: two GpuArch
  /// values with equal fingerprints produce identical simulations.
  std::uint64_t fingerprint() const;
};

}  // namespace catt::arch
