#include "arch/launch.hpp"

#include "common/units.hpp"

namespace catt::arch {

std::string to_string(const Dim3& d) {
  return "(" + std::to_string(d.x) + "," + std::to_string(d.y) + "," + std::to_string(d.z) + ")";
}

int LaunchConfig::warps_per_block(int warp_size) const {
  return static_cast<int>(ceil_div<std::uint64_t>(block.count(), static_cast<std::uint64_t>(warp_size)));
}

std::string to_string(const LaunchConfig& cfg) {
  std::string s = "<<<" + to_string(cfg.grid) + ", " + to_string(cfg.block);
  if (cfg.dyn_shared_bytes > 0) s += ", " + std::to_string(cfg.dyn_shared_bytes);
  s += ">>>";
  return s;
}

}  // namespace catt::arch
