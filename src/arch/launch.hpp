// CUDA-style launch geometry: grid/block dimensions and per-launch resources.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace catt::arch {

/// CUDA dim3. Dimensions default to 1 so `Dim3{256}` is a 1-D block of 256.
struct Dim3 {
  std::uint32_t x = 1;
  std::uint32_t y = 1;
  std::uint32_t z = 1;

  constexpr std::uint64_t count() const {
    return static_cast<std::uint64_t>(x) * y * z;
  }
  friend bool operator==(const Dim3&, const Dim3&) = default;
};

std::string to_string(const Dim3& d);

/// Kernel launch geometry plus dynamically-requested shared memory,
/// mirroring `kernel<<<grid, block, dyn_shared>>>`.
struct LaunchConfig {
  Dim3 grid;
  Dim3 block;
  std::size_t dyn_shared_bytes = 0;

  std::uint64_t threads_per_block() const { return block.count(); }
  std::uint64_t num_blocks() const { return grid.count(); }
  std::uint64_t total_threads() const { return grid.count() * block.count(); }

  /// Warps per thread block, rounding partial warps up (hardware allocates
  /// a full warp slot even for a ragged tail).
  int warps_per_block(int warp_size) const;
};

std::string to_string(const LaunchConfig& cfg);

/// Flattens a 3-D thread index to the canonical CUDA linear id:
/// tid.x + tid.y*ntid.x + tid.z*ntid.x*ntid.y.
constexpr std::uint64_t linearize(const Dim3& idx, const Dim3& extent) {
  return idx.x + static_cast<std::uint64_t>(idx.y) * extent.x +
         static_cast<std::uint64_t>(idx.z) * extent.x * extent.y;
}

/// Inverse of linearize.
constexpr Dim3 delinearize(std::uint64_t linear, const Dim3& extent) {
  Dim3 d;
  d.x = static_cast<std::uint32_t>(linear % extent.x);
  d.y = static_cast<std::uint32_t>((linear / extent.x) % extent.y);
  d.z = static_cast<std::uint32_t>(linear / (static_cast<std::uint64_t>(extent.x) * extent.y));
  return d;
}

}  // namespace catt::arch
