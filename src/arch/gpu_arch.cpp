#include "arch/gpu_arch.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/units.hpp"

namespace catt::arch {

std::uint64_t GpuArch::fingerprint() const {
  hash::Fnv1a h;
  h.str(name)
      .i32(num_sms)
      .i32(warp_size)
      .i32(max_warps_per_sm)
      .i32(max_tbs_per_sm)
      .i32(max_threads_per_tb)
      .size(register_file_bytes)
      .size(unified_cache_bytes)
      .b(unified_l1_shared)
      .size(fixed_l1d_bytes)
      .size(fixed_shared_bytes)
      .i32(line_bytes)
      .i32(sector_bytes)
      .i32(l1_assoc)
      .i32(l1_mshrs)
      .size(l2_bytes)
      .i32(l2_assoc)
      .i32(schedulers_per_sm)
      .size(l1d_cap_bytes)
      .i32(timing.l1_hit_latency)
      .i32(timing.l2_hit_latency)
      .i32(timing.dram_latency)
      .i32(timing.lsu_issue_interval)
      .i32(timing.l2_service_interval)
      .i32(timing.dram_sector_interval);
  h.size(shared_carveouts.size());
  for (std::size_t c : shared_carveouts) h.size(c);
  return h.value();
}

std::size_t GpuArch::l1d_bytes_for_carveout(std::size_t shared_bytes) const {
  std::size_t l1d = 0;
  if (!unified_l1_shared) {
    l1d = fixed_l1d_bytes;
  } else {
    if (shared_bytes > unified_cache_bytes) {
      throw SimError("carve-out " + std::to_string(shared_bytes) + " exceeds unified cache of " +
                     std::to_string(unified_cache_bytes) + " bytes");
    }
    l1d = unified_cache_bytes - shared_bytes;
  }
  if (l1d_cap_bytes != 0) l1d = std::min(l1d, l1d_cap_bytes);
  return l1d;
}

std::size_t GpuArch::smallest_carveout_for(std::size_t shared_bytes_needed) const {
  if (!unified_l1_shared) {
    if (shared_bytes_needed > fixed_shared_bytes) {
      throw SimError("shared memory need exceeds fixed shared capacity");
    }
    return fixed_shared_bytes;
  }
  for (std::size_t option : shared_carveouts) {
    if (option >= shared_bytes_needed) return option;
  }
  throw SimError("shared memory need " + std::to_string(shared_bytes_needed) +
                 " exceeds the largest carve-out");
}

GpuArch GpuArch::titan_v(int num_sms) {
  GpuArch a;
  a.name = "titan-v-sim";
  a.num_sms = num_sms;
  a.warp_size = 32;
  a.max_warps_per_sm = 64;
  a.max_tbs_per_sm = 32;
  a.max_threads_per_tb = 1024;
  a.register_file_bytes = 256_KiB;
  a.unified_cache_bytes = 128_KiB;
  a.unified_l1_shared = true;
  a.shared_carveouts = {0, 8_KiB, 16_KiB, 32_KiB, 64_KiB, 96_KiB};
  a.line_bytes = 128;
  a.sector_bytes = 32;
  a.l1_assoc = 32;
  a.l1_mshrs = 128;
  a.l2_bytes = 256_KiB * static_cast<std::size_t>(num_sms > 0 ? num_sms : 1);
  a.l2_assoc = 16;
  a.schedulers_per_sm = 4;
  return a;
}

GpuArch GpuArch::pascal_like(int num_sms) {
  GpuArch a = titan_v(num_sms);
  a.name = "pascal-like-sim";
  a.unified_l1_shared = false;
  a.fixed_l1d_bytes = 24_KiB;
  a.fixed_shared_bytes = 96_KiB;
  a.l2_bytes = 192_KiB * static_cast<std::size_t>(num_sms > 0 ? num_sms : 1);
  return a;
}

GpuArch GpuArch::titan_v_32k_l1d(int num_sms) {
  GpuArch a = titan_v(num_sms);
  a.name = "titan-v-sim-32k-l1d";
  a.l1d_cap_bytes = 32_KiB;
  return a;
}

}  // namespace catt::arch
