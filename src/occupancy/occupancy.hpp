// Occupancy calculation and L1D/shared-memory configuration (Section 4.1).
//
// Implements the paper's Eq. 1-4:
//   Eq. 1  #TB_shm = SIZE_shm_SM / USE_shm_TB
//   Eq. 2  #TB_reg = SIZE_reg_SM / USE_reg_TB
//   Eq. 3  #TB_SM  = min(#TB_shm, #TB_reg, #TB_HW)
//   Eq. 4  USE_shm_SM = USE_shm_TB * #TB_SM
// plus the carve-out choice: the smallest legal shared-memory configuration
// >= USE_shm_SM, maximizing the L1D under the given occupancy.
#pragma once

#include <cstddef>
#include <string>

#include "arch/gpu_arch.hpp"
#include "arch/launch.hpp"
#include "ir/ir.hpp"

namespace catt::occupancy {

/// Which resource capped #TB_SM (useful in reports and tests).
enum class Limiter { kSharedMem, kRegisters, kWarpSlots, kTbSlots, kGridSize };

const char* to_string(Limiter l);

struct Occupancy {
  /// Concurrent thread blocks per SM (Eq. 3, also capped by the grid).
  int tbs_per_sm = 0;
  /// Warps per thread block (ceil(block threads / warp size)).
  int warps_per_tb = 0;
  /// Concurrent warps per SM = warps_per_tb * tbs_per_sm.
  int warps_per_sm = 0;
  Limiter limiter = Limiter::kWarpSlots;

  /// Shared memory actually needed by the concurrent TBs (Eq. 4).
  std::size_t shm_use_per_sm = 0;
  /// Chosen carve-out (smallest legal >= shm_use_per_sm).
  std::size_t shm_carveout = 0;
  /// Resulting L1D capacity.
  std::size_t l1d_bytes = 0;

  /// The paper's TLP notation "(#warps_TB, #TBs)".
  std::string tlp_string() const;
};

/// Per-TB resource usage, as the compiler would report it.
struct TbResources {
  std::size_t shared_bytes_per_tb = 0;
  int regs_per_thread = 0;
};

TbResources tb_resources(const ir::Kernel& kernel, const arch::LaunchConfig& launch);

/// Computes the baseline occupancy and the L1D-maximizing configuration for
/// `kernel` under `launch` on `arch`. Throws catt::SimError when the kernel
/// cannot run at all (e.g. one TB exceeds the register file).
Occupancy compute(const arch::GpuArch& arch, const ir::Kernel& kernel,
                  const arch::LaunchConfig& launch);

/// Same, but with the TB count additionally capped at `max_tbs` (> 0); used
/// when evaluating throttled configurations.
Occupancy compute_with_tb_cap(const arch::GpuArch& arch, const ir::Kernel& kernel,
                              const arch::LaunchConfig& launch, int max_tbs);

/// Dummy shared-memory bytes a TB must allocate so that at most
/// `target_tbs` TBs fit on one SM (the TB-level throttling transform's
/// sizing rule, Figure 5). Returns 0 when no padding is needed.
std::size_t dummy_shared_bytes_for_tb_limit(const arch::GpuArch& arch, const ir::Kernel& kernel,
                                            const arch::LaunchConfig& launch, int target_tbs);

}  // namespace catt::occupancy
