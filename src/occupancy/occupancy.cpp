#include "occupancy/occupancy.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/units.hpp"

namespace catt::occupancy {

const char* to_string(Limiter l) {
  switch (l) {
    case Limiter::kSharedMem: return "shared-memory";
    case Limiter::kRegisters: return "registers";
    case Limiter::kWarpSlots: return "warp-slots";
    case Limiter::kTbSlots: return "tb-slots";
    case Limiter::kGridSize: return "grid-size";
  }
  return "?";
}

std::string Occupancy::tlp_string() const {
  return "(" + std::to_string(warps_per_tb) + "," + std::to_string(tbs_per_sm) + ")";
}

TbResources tb_resources(const ir::Kernel& kernel, const arch::LaunchConfig& launch) {
  TbResources r;
  r.shared_bytes_per_tb = kernel.static_shared_bytes() + launch.dyn_shared_bytes;
  r.regs_per_thread = kernel.regs_per_thread;
  return r;
}

namespace {

/// Maximum shared-memory capacity an SM can be configured to expose.
std::size_t max_shared_capacity(const arch::GpuArch& arch) {
  if (!arch.unified_l1_shared) return arch.fixed_shared_bytes;
  std::size_t m = 0;
  for (std::size_t c : arch.shared_carveouts) m = std::max(m, c);
  return m;
}

Occupancy compute_impl(const arch::GpuArch& arch, const ir::Kernel& kernel,
                       const arch::LaunchConfig& launch, int tb_cap) {
  if (launch.block.count() == 0 || launch.grid.count() == 0) {
    throw SimError("empty launch configuration");
  }
  if (launch.block.count() > static_cast<std::uint64_t>(arch.max_threads_per_tb)) {
    throw SimError("thread block of " + std::to_string(launch.block.count()) +
                   " exceeds the " + std::to_string(arch.max_threads_per_tb) + "-thread limit");
  }

  const TbResources res = tb_resources(kernel, launch);
  const int warps_per_tb = launch.warps_per_block(arch.warp_size);

  constexpr int kUnlimited = std::numeric_limits<int>::max();

  // Eq. 1: shared-memory limit, against the largest configurable capacity.
  int tb_shm = kUnlimited;
  const std::size_t shm_capacity = max_shared_capacity(arch);
  if (res.shared_bytes_per_tb > 0) {
    if (res.shared_bytes_per_tb > shm_capacity) {
      throw SimError("kernel '" + kernel.name + "' needs " +
                     std::to_string(res.shared_bytes_per_tb) +
                     " B shared per TB, capacity is " + std::to_string(shm_capacity));
    }
    tb_shm = static_cast<int>(shm_capacity / res.shared_bytes_per_tb);
  }

  // Eq. 2: register-file limit. Registers are 4 bytes, allocated for every
  // thread of the block (partial warps still reserve full warps).
  const std::size_t regs_bytes_per_tb =
      static_cast<std::size_t>(res.regs_per_thread) * 4 *
      static_cast<std::size_t>(warps_per_tb) * static_cast<std::size_t>(arch.warp_size);
  if (regs_bytes_per_tb > arch.register_file_bytes) {
    throw SimError("kernel '" + kernel.name + "': one TB exceeds the register file");
  }
  const int tb_reg = regs_bytes_per_tb == 0
                         ? kUnlimited
                         : static_cast<int>(arch.register_file_bytes / regs_bytes_per_tb);

  // Eq. 3's #TB_HW: warp slots and TB slots.
  const int tb_warp_slots = arch.max_warps_per_sm / warps_per_tb;
  if (tb_warp_slots == 0) {
    throw SimError("kernel '" + kernel.name + "': one TB exceeds the warp slots of an SM");
  }
  const int tb_tb_slots = arch.max_tbs_per_sm;

  // An SM can never hold more TBs than its share of the grid provides.
  const int tb_grid = static_cast<int>(std::min<std::uint64_t>(
      std::numeric_limits<int>::max(),
      ceil_div<std::uint64_t>(launch.num_blocks(), static_cast<std::uint64_t>(arch.num_sms))));

  Occupancy occ;
  occ.warps_per_tb = warps_per_tb;
  occ.tbs_per_sm = tb_shm;
  occ.limiter = Limiter::kSharedMem;
  auto consider = [&](int limit, Limiter why) {
    if (limit < occ.tbs_per_sm) {
      occ.tbs_per_sm = limit;
      occ.limiter = why;
    }
  };
  consider(tb_reg, Limiter::kRegisters);
  consider(tb_warp_slots, Limiter::kWarpSlots);
  consider(tb_tb_slots, Limiter::kTbSlots);
  consider(tb_grid, Limiter::kGridSize);
  if (tb_cap > 0) consider(tb_cap, Limiter::kTbSlots);

  if (occ.tbs_per_sm <= 0) {
    throw SimError("kernel '" + kernel.name + "' achieves zero occupancy");
  }

  occ.warps_per_sm = occ.warps_per_tb * occ.tbs_per_sm;

  // Eq. 4 + carve-out choice.
  occ.shm_use_per_sm = res.shared_bytes_per_tb * static_cast<std::size_t>(occ.tbs_per_sm);
  occ.shm_carveout = arch.smallest_carveout_for(occ.shm_use_per_sm);
  occ.l1d_bytes = arch.l1d_bytes_for_carveout(occ.shm_carveout);
  return occ;
}

}  // namespace

Occupancy compute(const arch::GpuArch& arch, const ir::Kernel& kernel,
                  const arch::LaunchConfig& launch) {
  return compute_impl(arch, kernel, launch, 0);
}

Occupancy compute_with_tb_cap(const arch::GpuArch& arch, const ir::Kernel& kernel,
                              const arch::LaunchConfig& launch, int max_tbs) {
  if (max_tbs <= 0) throw SimError("TB cap must be positive");
  return compute_impl(arch, kernel, launch, max_tbs);
}

std::size_t dummy_shared_bytes_for_tb_limit(const arch::GpuArch& arch, const ir::Kernel& kernel,
                                            const arch::LaunchConfig& launch, int target_tbs) {
  if (target_tbs <= 0) throw SimError("target TB count must be positive");
  const Occupancy base = compute(arch, kernel, launch);
  if (base.tbs_per_sm <= target_tbs) return 0;

  const std::size_t capacity = max_shared_capacity(arch);
  const std::size_t use = tb_resources(kernel, launch).shared_bytes_per_tb;

  // Smallest per-TB shared footprint with floor(capacity / per_tb) <= target.
  std::size_t per_tb = capacity / static_cast<std::size_t>(target_tbs);
  while (per_tb > 0 && capacity / per_tb > static_cast<std::size_t>(target_tbs)) ++per_tb;
  if (per_tb <= use) return 0;
  return per_tb - use;
}

}  // namespace catt::occupancy
