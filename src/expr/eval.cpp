#include "expr/eval.hpp"

#include <cmath>

#include "common/error.hpp"

namespace catt::expr {

namespace {

Value eval_binary(const Expr& e, EvalContext& ctx) {
  const Value a = eval(*e.args[0], ctx);
  // Short-circuit logical ops before evaluating the right side.
  if (e.bin == BinOp::kAnd) {
    if (!a.truthy()) return Value::of_int(0);
    return Value::of_int(eval(*e.args[1], ctx).truthy() ? 1 : 0);
  }
  if (e.bin == BinOp::kOr) {
    if (a.truthy()) return Value::of_int(1);
    return Value::of_int(eval(*e.args[1], ctx).truthy() ? 1 : 0);
  }
  const Value b = eval(*e.args[1], ctx);

  if (is_relational(e.bin)) {
    const bool float_cmp = a.type == ScalarType::kFloat || b.type == ScalarType::kFloat;
    const double x = a.as_float();
    const double y = b.as_float();
    const std::int64_t xi = a.as_int();
    const std::int64_t yi = b.as_int();
    bool r = false;
    switch (e.bin) {
      case BinOp::kLt: r = float_cmp ? x < y : xi < yi; break;
      case BinOp::kLe: r = float_cmp ? x <= y : xi <= yi; break;
      case BinOp::kGt: r = float_cmp ? x > y : xi > yi; break;
      case BinOp::kGe: r = float_cmp ? x >= y : xi >= yi; break;
      case BinOp::kEq: r = float_cmp ? x == y : xi == yi; break;
      case BinOp::kNe: r = float_cmp ? x != y : xi != yi; break;
      default: break;
    }
    return Value::of_int(r ? 1 : 0);
  }

  if (e.type == ScalarType::kFloat) {
    const double x = a.as_float();
    const double y = b.as_float();
    switch (e.bin) {
      case BinOp::kAdd: return Value::of_float(x + y);
      case BinOp::kSub: return Value::of_float(x - y);
      case BinOp::kMul: return Value::of_float(x * y);
      case BinOp::kDiv: return Value::of_float(x / y);
      case BinOp::kMin: return Value::of_float(std::fmin(x, y));
      case BinOp::kMax: return Value::of_float(std::fmax(x, y));
      default: throw IrError("invalid float binary op");
    }
  }

  const std::int64_t x = a.as_int();
  const std::int64_t y = b.as_int();
  switch (e.bin) {
    case BinOp::kAdd: return Value::of_int(x + y);
    case BinOp::kSub: return Value::of_int(x - y);
    case BinOp::kMul: return Value::of_int(x * y);
    case BinOp::kDiv:
      if (y == 0) throw IrError("integer division by zero in: " + e.str());
      return Value::of_int(x / y);
    case BinOp::kMod:
      if (y == 0) throw IrError("integer modulo by zero in: " + e.str());
      return Value::of_int(x % y);
    case BinOp::kMin: return Value::of_int(x < y ? x : y);
    case BinOp::kMax: return Value::of_int(x > y ? x : y);
    default: throw IrError("invalid int binary op");
  }
}

Value eval_call(const Expr& e, EvalContext& ctx) {
  auto arg = [&](std::size_t i) { return eval(*e.args[i], ctx).as_float(); };
  if (e.name == "sqrtf") return Value::of_float(std::sqrt(arg(0)));
  if (e.name == "fabsf") return Value::of_float(std::fabs(arg(0)));
  if (e.name == "expf") return Value::of_float(std::exp(arg(0)));
  if (e.name == "logf") return Value::of_float(std::log(arg(0)));
  if (e.name == "powf") return Value::of_float(std::pow(arg(0), arg(1)));
  if (e.name == "floorf") return Value::of_float(std::floor(arg(0)));
  if (e.name == "fminf") return Value::of_float(std::fmin(arg(0), arg(1)));
  if (e.name == "fmaxf") return Value::of_float(std::fmax(arg(0), arg(1)));
  throw IrError("unknown intrinsic: " + e.name);
}

}  // namespace

Value eval(const Expr& e, EvalContext& ctx) {
  switch (e.kind) {
    case ExprKind::kConst:
      return e.type == ScalarType::kInt ? Value::of_int(e.ival) : Value::of_float(e.fval);
    case ExprKind::kVar:
      return ctx.var_value(e.name);
    case ExprKind::kBuiltin:
      return Value::of_int(ctx.builtin_value(e.builtin));
    case ExprKind::kUnary: {
      const Value v = eval(*e.args[0], ctx);
      if (e.un == UnOp::kNot) return Value::of_int(v.truthy() ? 0 : 1);
      return v.type == ScalarType::kFloat ? Value::of_float(-v.as_float())
                                          : Value::of_int(-v.as_int());
    }
    case ExprKind::kBinary:
      return eval_binary(e, ctx);
    case ExprKind::kLoad: {
      const std::int64_t idx = eval(*e.args[0], ctx).as_int();
      return ctx.load_value(e.name, idx);
    }
    case ExprKind::kCast: {
      const Value v = eval(*e.args[0], ctx);
      return e.type == ScalarType::kFloat ? Value::of_float(v.as_float())
                                          : Value::of_int(v.as_int());
    }
    case ExprKind::kCall:
      return eval_call(e, ctx);
  }
  throw IrError("unreachable expression kind");
}

bool contains_load(const Expr& e) {
  if (e.kind == ExprKind::kLoad) return true;
  for (const auto& a : e.args) {
    if (contains_load(*a)) return true;
  }
  return false;
}

bool references_var(const Expr& e, const std::string& name) {
  if (e.kind == ExprKind::kVar && e.name == name) return true;
  for (const auto& a : e.args) {
    if (references_var(*a, name)) return true;
  }
  return false;
}

}  // namespace catt::expr
