#include "expr/expr.hpp"

#include <utility>

namespace catt::expr {

bool is_relational(BinOp op) {
  switch (op) {
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kAnd:
    case BinOp::kOr:
      return true;
    default:
      return false;
  }
}

const char* to_string(Builtin b) {
  switch (b) {
    case Builtin::kThreadIdxX: return "threadIdx.x";
    case Builtin::kThreadIdxY: return "threadIdx.y";
    case Builtin::kThreadIdxZ: return "threadIdx.z";
    case Builtin::kBlockIdxX: return "blockIdx.x";
    case Builtin::kBlockIdxY: return "blockIdx.y";
    case Builtin::kBlockIdxZ: return "blockIdx.z";
    case Builtin::kBlockDimX: return "blockDim.x";
    case Builtin::kBlockDimY: return "blockDim.y";
    case Builtin::kBlockDimZ: return "blockDim.z";
    case Builtin::kGridDimX: return "gridDim.x";
    case Builtin::kGridDimY: return "gridDim.y";
    case Builtin::kGridDimZ: return "gridDim.z";
  }
  return "?";
}

const char* to_string(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
    case BinOp::kMin: return "min";
    case BinOp::kMax: return "max";
  }
  return "?";
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->type = type;
  e->ival = ival;
  e->fval = fval;
  e->name = name;
  e->un = un;
  e->bin = bin;
  e->builtin = builtin;
  e->args.reserve(args.size());
  for (const auto& a : args) e->args.push_back(a->clone());
  return e;
}

namespace {

// Precedence levels for printing, loosely following C.
int precedence(const Expr& e) {
  if (e.kind != ExprKind::kBinary) return 100;
  switch (e.bin) {
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kMod:
      return 50;
    case BinOp::kAdd:
    case BinOp::kSub:
      return 40;
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return 30;
    case BinOp::kEq:
    case BinOp::kNe:
      return 25;
    case BinOp::kAnd:
      return 20;
    case BinOp::kOr:
      return 15;
    case BinOp::kMin:
    case BinOp::kMax:
      return 100;  // printed as calls
  }
  return 100;
}

void print(const Expr& e, std::string& out, int parent_prec);

void print_child(const Expr& e, std::string& out, int my_prec) {
  print(e, out, my_prec);
}

void print(const Expr& e, std::string& out, int parent_prec) {
  switch (e.kind) {
    case ExprKind::kConst:
      if (e.type == ScalarType::kInt) {
        out += std::to_string(e.ival);
      } else {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%gf", e.fval);
        out += buf;
      }
      return;
    case ExprKind::kVar:
      out += e.name;
      return;
    case ExprKind::kBuiltin:
      out += to_string(e.builtin);
      return;
    case ExprKind::kUnary:
      out += (e.un == UnOp::kNeg) ? "-" : "!";
      out += "(";
      print(*e.args[0], out, 0);
      out += ")";
      return;
    case ExprKind::kBinary: {
      if (e.bin == BinOp::kMin || e.bin == BinOp::kMax) {
        out += (e.bin == BinOp::kMin) ? "min(" : "max(";
        print(*e.args[0], out, 0);
        out += ", ";
        print(*e.args[1], out, 0);
        out += ")";
        return;
      }
      const int prec = precedence(e);
      const bool paren = prec < parent_prec;
      if (paren) out += "(";
      print_child(*e.args[0], out, prec);
      out += " ";
      out += to_string(e.bin);
      out += " ";
      // +1 keeps left-associativity unambiguous for - / %.
      print_child(*e.args[1], out, prec + 1);
      if (paren) out += ")";
      return;
    }
    case ExprKind::kLoad:
      out += e.name;
      out += "[";
      print(*e.args[0], out, 0);
      out += "]";
      return;
    case ExprKind::kCast:
      out += (e.type == ScalarType::kFloat) ? "(float)(" : "(int)(";
      print(*e.args[0], out, 0);
      out += ")";
      return;
    case ExprKind::kCall: {
      out += e.name;
      out += "(";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        print(*e.args[i], out, 0);
      }
      out += ")";
      return;
    }
  }
}

}  // namespace

std::string Expr::str() const {
  std::string out;
  print(*this, out, 0);
  return out;
}

ExprPtr iconst(std::int64_t v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kConst;
  e->type = ScalarType::kInt;
  e->ival = v;
  return e;
}

ExprPtr fconst(double v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kConst;
  e->type = ScalarType::kFloat;
  e->fval = v;
  return e;
}

ExprPtr var(std::string name, ScalarType type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kVar;
  e->type = type;
  e->name = std::move(name);
  return e;
}

ExprPtr fvar(std::string name) { return var(std::move(name), ScalarType::kFloat); }

ExprPtr builtin(Builtin b) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBuiltin;
  e->type = ScalarType::kInt;
  e->builtin = b;
  return e;
}

ExprPtr tid_x() { return builtin(Builtin::kThreadIdxX); }
ExprPtr tid_y() { return builtin(Builtin::kThreadIdxY); }
ExprPtr ctaid_x() { return builtin(Builtin::kBlockIdxX); }
ExprPtr ctaid_y() { return builtin(Builtin::kBlockIdxY); }
ExprPtr ntid_x() { return builtin(Builtin::kBlockDimX); }
ExprPtr ntid_y() { return builtin(Builtin::kBlockDimY); }
ExprPtr nctaid_x() { return builtin(Builtin::kGridDimX); }

ExprPtr unary(UnOp op, ExprPtr e) {
  auto u = std::make_unique<Expr>();
  u->kind = ExprKind::kUnary;
  u->type = e->type;
  u->un = op;
  u->args.push_back(std::move(e));
  return u;
}

ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->type = is_relational(op)
                ? ScalarType::kInt
                : (a->type == ScalarType::kFloat || b->type == ScalarType::kFloat
                       ? ScalarType::kFloat
                       : ScalarType::kInt);
  e->bin = op;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

ExprPtr add(ExprPtr a, ExprPtr b) { return binary(BinOp::kAdd, std::move(a), std::move(b)); }
ExprPtr sub(ExprPtr a, ExprPtr b) { return binary(BinOp::kSub, std::move(a), std::move(b)); }
ExprPtr mul(ExprPtr a, ExprPtr b) { return binary(BinOp::kMul, std::move(a), std::move(b)); }
ExprPtr div(ExprPtr a, ExprPtr b) { return binary(BinOp::kDiv, std::move(a), std::move(b)); }
ExprPtr mod(ExprPtr a, ExprPtr b) { return binary(BinOp::kMod, std::move(a), std::move(b)); }
ExprPtr lt(ExprPtr a, ExprPtr b) { return binary(BinOp::kLt, std::move(a), std::move(b)); }
ExprPtr le(ExprPtr a, ExprPtr b) { return binary(BinOp::kLe, std::move(a), std::move(b)); }
ExprPtr gt(ExprPtr a, ExprPtr b) { return binary(BinOp::kGt, std::move(a), std::move(b)); }
ExprPtr ge(ExprPtr a, ExprPtr b) { return binary(BinOp::kGe, std::move(a), std::move(b)); }
ExprPtr eq(ExprPtr a, ExprPtr b) { return binary(BinOp::kEq, std::move(a), std::move(b)); }
ExprPtr ne(ExprPtr a, ExprPtr b) { return binary(BinOp::kNe, std::move(a), std::move(b)); }
ExprPtr land(ExprPtr a, ExprPtr b) { return binary(BinOp::kAnd, std::move(a), std::move(b)); }
ExprPtr lor(ExprPtr a, ExprPtr b) { return binary(BinOp::kOr, std::move(a), std::move(b)); }

ExprPtr load(std::string array, ExprPtr index, ScalarType elem_type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLoad;
  e->type = elem_type;
  e->name = std::move(array);
  e->args.push_back(std::move(index));
  return e;
}

ExprPtr cast(ScalarType to, ExprPtr e) {
  auto c = std::make_unique<Expr>();
  c->kind = ExprKind::kCast;
  c->type = to;
  c->args.push_back(std::move(e));
  return c;
}

ExprPtr call(std::string fn, std::vector<ExprPtr> args, ScalarType type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCall;
  e->type = type;
  e->name = std::move(fn);
  e->args = std::move(args);
  return e;
}

bool equal(const Expr& a, const Expr& b) {
  if (a.kind != b.kind || a.type != b.type) return false;
  switch (a.kind) {
    case ExprKind::kConst:
      return a.type == ScalarType::kInt ? a.ival == b.ival : a.fval == b.fval;
    case ExprKind::kVar:
      return a.name == b.name;
    case ExprKind::kBuiltin:
      return a.builtin == b.builtin;
    case ExprKind::kUnary:
      if (a.un != b.un) return false;
      break;
    case ExprKind::kBinary:
      if (a.bin != b.bin) return false;
      break;
    case ExprKind::kLoad:
    case ExprKind::kCall:
      if (a.name != b.name) return false;
      break;
    case ExprKind::kCast:
      break;
  }
  if (a.args.size() != b.args.size()) return false;
  for (std::size_t i = 0; i < a.args.size(); ++i) {
    if (!equal(*a.args[i], *b.args[i])) return false;
  }
  return true;
}

ExprPtr linear_tid_x() { return add(mul(ctaid_x(), ntid_x()), tid_x()); }

}  // namespace catt::expr
