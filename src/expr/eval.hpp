// Expression evaluation. The simulator's functional interpreter, the
// analyzer's per-lane address enumeration (multi-dimensional TBs), and the
// transform legality checks all evaluate expressions through this interface.
#pragma once

#include <cstdint>
#include <string>

#include "expr/expr.hpp"

namespace catt::expr {

/// Runtime value: an int64 or a float (stored as double for headroom).
struct Value {
  ScalarType type = ScalarType::kInt;
  std::int64_t i = 0;
  double f = 0.0;

  static Value of_int(std::int64_t v) { return Value{ScalarType::kInt, v, 0.0}; }
  static Value of_float(double v) { return Value{ScalarType::kFloat, 0, v}; }

  std::int64_t as_int() const { return type == ScalarType::kInt ? i : static_cast<std::int64_t>(f); }
  double as_float() const { return type == ScalarType::kFloat ? f : static_cast<double>(i); }
  bool truthy() const { return type == ScalarType::kInt ? i != 0 : f != 0.0; }
};

/// Environment an expression is evaluated against. Implementations supply
/// the SIMT builtins for one lane, variable bindings, and array loads.
class EvalContext {
 public:
  virtual ~EvalContext() = default;

  /// Value of a SIMT builtin (threadIdx.x, blockDim.y, ...) for this lane.
  virtual std::int64_t builtin_value(Builtin b) const = 0;

  /// Value of a named variable (local, loop var, or scalar parameter).
  /// Throws catt::IrError for unknown names.
  virtual Value var_value(const std::string& name) const = 0;

  /// Loads array[index]. Implementations may record the access (the
  /// simulator does) or forbid it (the static enumerator does).
  virtual Value load_value(const std::string& array, std::int64_t index) = 0;
};

/// Evaluates `e` in `ctx`. Integer division/modulo by zero throws IrError.
Value eval(const Expr& e, EvalContext& ctx);

/// True if the expression tree contains a kLoad node (data-dependent /
/// irregular index in the paper's terms).
bool contains_load(const Expr& e);

/// True if the expression references the named variable.
bool references_var(const Expr& e, const std::string& name);

}  // namespace catt::expr
