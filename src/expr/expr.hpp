// Typed expression AST for the mini-CUDA kernel IR.
//
// Array index expressions are the objects CATT's static analysis studies:
// the paper's Eq. 5 models them as C_tid * tid + C_i * i. This AST is
// general enough to also carry the float compute of each kernel so the
// simulator can execute kernels functionally.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace catt::expr {

enum class ScalarType : std::uint8_t { kInt, kFloat };

enum class ExprKind : std::uint8_t {
  kConst,    // integer or float literal
  kVar,      // named local variable, scalar kernel parameter, or loop var
  kBuiltin,  // threadIdx.x, blockIdx.y, blockDim.x, gridDim.x, ...
  kUnary,
  kBinary,
  kLoad,  // array[index]; array may be a global or __shared__ array
  kCast,  // int <-> float conversion
  kCall,  // math intrinsic: sqrtf, fabsf, expf, logf, minf, maxf
};

enum class UnOp : std::uint8_t { kNeg, kNot };

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr,
  kMin, kMax,
};

/// True for comparison/logical operators (their result type is int).
bool is_relational(BinOp op);

enum class Builtin : std::uint8_t {
  kThreadIdxX, kThreadIdxY, kThreadIdxZ,
  kBlockIdxX, kBlockIdxY, kBlockIdxZ,
  kBlockDimX, kBlockDimY, kBlockDimZ,
  kGridDimX, kGridDimY, kGridDimZ,
};

const char* to_string(Builtin b);
const char* to_string(BinOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One AST node. Children live in `args`; payload fields are used per-kind.
/// Nodes are immutable after construction by convention (the transform
/// passes clone rather than mutate).
struct Expr {
  ExprKind kind;
  ScalarType type = ScalarType::kInt;

  std::int64_t ival = 0;             // kConst (int)
  double fval = 0.0;                 // kConst (float)
  std::string name;                  // kVar / kLoad array / kCall callee
  UnOp un = UnOp::kNeg;              // kUnary
  BinOp bin = BinOp::kAdd;           // kBinary
  Builtin builtin = Builtin::kThreadIdxX;  // kBuiltin

  std::vector<ExprPtr> args;

  ExprPtr clone() const;

  /// C-like rendering with minimal parentheses, e.g. "i * NX + j".
  std::string str() const;
};

// ---- Factory helpers (the IR builder API uses these heavily). ----

ExprPtr iconst(std::int64_t v);
ExprPtr fconst(double v);
ExprPtr var(std::string name, ScalarType type = ScalarType::kInt);
ExprPtr fvar(std::string name);
ExprPtr builtin(Builtin b);
ExprPtr tid_x();
ExprPtr tid_y();
ExprPtr ctaid_x();
ExprPtr ctaid_y();
ExprPtr ntid_x();
ExprPtr ntid_y();
ExprPtr nctaid_x();
ExprPtr unary(UnOp op, ExprPtr e);
ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b);
ExprPtr add(ExprPtr a, ExprPtr b);
ExprPtr sub(ExprPtr a, ExprPtr b);
ExprPtr mul(ExprPtr a, ExprPtr b);
ExprPtr div(ExprPtr a, ExprPtr b);
ExprPtr mod(ExprPtr a, ExprPtr b);
ExprPtr lt(ExprPtr a, ExprPtr b);
ExprPtr le(ExprPtr a, ExprPtr b);
ExprPtr gt(ExprPtr a, ExprPtr b);
ExprPtr ge(ExprPtr a, ExprPtr b);
ExprPtr eq(ExprPtr a, ExprPtr b);
ExprPtr ne(ExprPtr a, ExprPtr b);
ExprPtr land(ExprPtr a, ExprPtr b);
ExprPtr lor(ExprPtr a, ExprPtr b);
/// array[index]; `elem_type` is the array's element type.
ExprPtr load(std::string array, ExprPtr index, ScalarType elem_type = ScalarType::kFloat);
ExprPtr cast(ScalarType to, ExprPtr e);
ExprPtr call(std::string fn, std::vector<ExprPtr> args, ScalarType type = ScalarType::kFloat);

/// Structural equality (used by tests and the transformer's legality checks).
bool equal(const Expr& a, const Expr& b);

/// The canonical linearized thread id expression:
/// blockIdx.x * blockDim.x + threadIdx.x.
ExprPtr linear_tid_x();

}  // namespace catt::expr
