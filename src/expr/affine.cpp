#include "expr/affine.hpp"

#include <cstdlib>

namespace catt::expr {

namespace {

LinearForm invalid_form(bool from_load = false) {
  LinearForm lf;
  lf.valid = false;
  lf.has_load = from_load;
  return lf;
}

LinearForm constant_form(std::int64_t v) {
  LinearForm lf;
  lf.c0 = v;
  return lf;
}

void add_scaled(LinearForm& dst, const LinearForm& src, std::int64_t scale) {
  dst.c0 += scale * src.c0;
  for (const auto& [k, c] : src.coeffs) {
    auto& slot = dst.coeffs[k];
    slot += scale * c;
    if (slot == 0) dst.coeffs.erase(k);
  }
  dst.has_load = dst.has_load || src.has_load;
  dst.valid = dst.valid && src.valid;
}

/// Launch-time value of a dimension builtin, if the env pins it.
std::optional<std::int64_t> launch_constant(Builtin b, const AffineEnv& env) {
  if (env.launch == nullptr) return std::nullopt;
  const auto& g = env.launch->grid;
  const auto& bl = env.launch->block;
  switch (b) {
    case Builtin::kBlockDimX: return bl.x;
    case Builtin::kBlockDimY: return bl.y;
    case Builtin::kBlockDimZ: return bl.z;
    case Builtin::kGridDimX: return g.x;
    case Builtin::kGridDimY: return g.y;
    case Builtin::kGridDimZ: return g.z;
    default: return std::nullopt;
  }
}

struct Analyzer {
  const AffineEnv& env;
  int depth = 0;

  LinearForm run(const Expr& e) {
    // Local-definition chains are short; the guard only protects against
    // pathological self-referential inputs.
    if (depth > 64) return invalid_form();

    switch (e.kind) {
      case ExprKind::kConst:
        if (e.type != ScalarType::kInt) return invalid_form();
        return constant_form(e.ival);

      case ExprKind::kBuiltin: {
        if (auto v = launch_constant(e.builtin, env)) return constant_form(*v);
        LinearForm lf;
        lf.coeffs[TermKey::of(e.builtin)] = 1;
        return lf;
      }

      case ExprKind::kVar: {
        if (env.loop_vars != nullptr && env.loop_vars->contains(e.name)) {
          LinearForm lf;
          lf.coeffs[TermKey::of_loop(e.name)] = 1;
          return lf;
        }
        if (env.params != nullptr) {
          auto it = env.params->find(e.name);
          if (it != env.params->end()) return constant_form(it->second);
        }
        if (env.local_defs != nullptr) {
          auto it = env.local_defs->find(e.name);
          if (it != env.local_defs->end() && it->second != nullptr) {
            ++depth;
            LinearForm lf = run(*it->second);
            --depth;
            return lf;
          }
        }
        return invalid_form();
      }

      case ExprKind::kUnary: {
        if (e.un != UnOp::kNeg) return invalid_form();
        LinearForm inner = run(*e.args[0]);
        if (!inner.valid) return inner;
        LinearForm lf;
        add_scaled(lf, inner, -1);
        return lf;
      }

      case ExprKind::kBinary: {
        if (is_relational(e.bin)) return invalid_form();
        LinearForm a = run(*e.args[0]);
        LinearForm b = run(*e.args[1]);
        if (!a.valid || !b.valid) {
          LinearForm lf = invalid_form(a.has_load || b.has_load);
          return lf;
        }
        switch (e.bin) {
          case BinOp::kAdd: {
            LinearForm lf = a;
            add_scaled(lf, b, 1);
            return lf;
          }
          case BinOp::kSub: {
            LinearForm lf = a;
            add_scaled(lf, b, -1);
            return lf;
          }
          case BinOp::kMul: {
            if (a.is_constant()) {
              LinearForm lf;
              add_scaled(lf, b, a.c0);
              return lf;
            }
            if (b.is_constant()) {
              LinearForm lf;
              add_scaled(lf, a, b.c0);
              return lf;
            }
            return invalid_form();
          }
          case BinOp::kDiv:
            if (a.is_constant() && b.is_constant() && b.c0 != 0) {
              return constant_form(a.c0 / b.c0);
            }
            return invalid_form();
          case BinOp::kMod:
            if (a.is_constant() && b.is_constant() && b.c0 != 0) {
              return constant_form(a.c0 % b.c0);
            }
            return invalid_form();
          case BinOp::kMin:
            if (a.is_constant() && b.is_constant()) {
              return constant_form(a.c0 < b.c0 ? a.c0 : b.c0);
            }
            return invalid_form();
          case BinOp::kMax:
            if (a.is_constant() && b.is_constant()) {
              return constant_form(a.c0 > b.c0 ? a.c0 : b.c0);
            }
            return invalid_form();
          default:
            return invalid_form();
        }
      }

      case ExprKind::kLoad:
        return invalid_form(/*from_load=*/true);

      case ExprKind::kCast:
        if (e.type != ScalarType::kInt || e.args[0]->type != ScalarType::kInt) {
          return invalid_form();
        }
        return run(*e.args[0]);

      case ExprKind::kCall:
        return invalid_form();
    }
    return invalid_form();
  }
};

}  // namespace

LinearForm analyze_affine(const Expr& e, const AffineEnv& env) {
  Analyzer a{env};
  return a.run(e);
}

IndexProfile profile_index(const LinearForm& lf, const arch::Dim3& block) {
  IndexProfile p;
  if (!lf.valid) {
    p.irregular = true;
    return p;
  }
  p.c0 = lf.c0;

  const std::int64_t cx = lf.coeff(TermKey::of(Builtin::kThreadIdxX));
  const std::int64_t cy = lf.coeff(TermKey::of(Builtin::kThreadIdxY));
  const std::int64_t cz = lf.coeff(TermKey::of(Builtin::kThreadIdxZ));

  // Within a warp, lanes advance through threadIdx.x first. When the block's
  // x extent covers a whole warp, adjacent lanes differ by exactly cx. For
  // narrower blocks a warp folds into y/z; we report the x-stride here and
  // leave the exact per-warp request count to address enumeration (the
  // paper's multi-dimensional fallback). The dominant stride is still cx
  // unless x is degenerate.
  if (block.x > 1 || (cy == 0 && cz == 0)) {
    p.c_tid = cx;
  } else if (block.y > 1) {
    p.c_tid = cy;
  } else {
    p.c_tid = cz;
  }

  for (const auto& [k, c] : lf.coeffs) {
    if (!k.is_builtin) p.c_loop[k.loop_var] = c;
  }
  return p;
}

}  // namespace catt::expr
