// Affine (integer-linear) analysis of array index expressions.
//
// This implements the analysis behind the paper's Eq. 5: an index expression
// is rewritten into the linear form
//
//     sum_k C_k * sym_k + C0
//
// where each sym_k is a SIMT builtin (threadIdx.x, blockIdx.y, ...) or an
// enclosing loop variable. From that form the per-access quantities the
// paper uses fall out directly:
//   * C_tid  — coefficient of the linearized thread id within a warp
//              (adjacent lanes differ by 1 in threadIdx.x), i.e. the
//              inter-thread distance in elements;
//   * C_i    — coefficient of a loop's iterator, i.e. the intra-thread
//              reuse distance across iterations (Eq. 6 compares it to the
//              cache line size).
//
// Local variables (e.g. `int i = blockIdx.x * blockDim.x + threadIdx.x;`)
// are resolved through their defining expressions; scalar kernel parameters
// are resolved through a parameter environment (their launch-time values);
// blockDim/gridDim become constants of the launch. Anything data-dependent
// (an index containing a load) or non-linear marks the form irregular —
// Section 4.2 then conservatively sets C_tid := 1.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "arch/launch.hpp"
#include "expr/expr.hpp"

namespace catt::expr {

/// Symbol a linear form can carry a coefficient for.
struct TermKey {
  bool is_builtin = false;
  Builtin builtin = Builtin::kThreadIdxX;
  std::string loop_var;  // used when !is_builtin

  static TermKey of(Builtin b) { return TermKey{true, b, {}}; }
  static TermKey of_loop(std::string v) { return TermKey{false, Builtin::kThreadIdxX, std::move(v)}; }

  friend bool operator<(const TermKey& a, const TermKey& b) {
    if (a.is_builtin != b.is_builtin) return a.is_builtin < b.is_builtin;
    if (a.is_builtin) return a.builtin < b.builtin;
    return a.loop_var < b.loop_var;
  }
  friend bool operator==(const TermKey&, const TermKey&) = default;
};

/// Linear form of an integer expression.
struct LinearForm {
  /// False when the expression is not representable (non-linear term,
  /// division by a symbol, data-dependent load, unknown variable).
  bool valid = true;
  /// True when invalidity came from a memory load (irregular access).
  bool has_load = false;
  std::int64_t c0 = 0;
  std::map<TermKey, std::int64_t> coeffs;

  std::int64_t coeff(const TermKey& k) const {
    auto it = coeffs.find(k);
    return it == coeffs.end() ? 0 : it->second;
  }
  bool is_constant() const { return valid && coeffs.empty(); }
};

/// Name -> value bindings for scalar kernel parameters (NX, ...).
using ParamEnv = std::map<std::string, std::int64_t>;

/// Name -> defining expression for integer locals, in declaration order.
using LocalDefs = std::map<std::string, const Expr*>;

/// Everything the affine analysis needs to resolve symbols.
struct AffineEnv {
  const ParamEnv* params = nullptr;
  const LocalDefs* local_defs = nullptr;
  const std::set<std::string>* loop_vars = nullptr;
  const arch::LaunchConfig* launch = nullptr;
};

/// Computes the linear form of `e` under `env`. Never throws; invalid
/// expressions yield `valid == false` (with `has_load` set when a load was
/// the cause), which the analyzer maps to the paper's conservative path.
LinearForm analyze_affine(const Expr& e, const AffineEnv& env);

/// Per-access profile in the paper's vocabulary, derived from a LinearForm.
struct IndexProfile {
  bool irregular = false;  // non-affine or data-dependent
  /// Inter-thread distance in elements between adjacent lanes of a warp
  /// (Eq. 5's C_tid). Meaningful only when !irregular.
  std::int64_t c_tid = 0;
  /// Intra-thread distance in elements per iteration of each enclosing
  /// loop variable (Eq. 5's C_i).
  std::map<std::string, std::int64_t> c_loop;
  std::int64_t c0 = 0;
};

/// Derives the paper-facing profile. `block` is the launch's thread-block
/// shape: with a multi-dimensional block, lanes of one warp advance through
/// threadIdx.x first and wrap into threadIdx.y, so the within-warp stride is
/// computed from the x/y/z coefficients and the block extents.
IndexProfile profile_index(const LinearForm& lf, const arch::Dim3& block);

}  // namespace catt::expr
