#include "harness/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <utility>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/log.hpp"
#include "exec/client.hpp"
#include "exec/wire.hpp"
#include "harness/harness.hpp"
#include "harness/spec.hpp"
#include "throttle/remote.hpp"
#include "workloads/workload.hpp"

namespace catt::bench {
namespace {

namespace rpc = exec::rpc;
namespace wire = exec::wire;

arch::GpuArch arch_by_name(const std::string& name, int num_sms) {
  if (name == "titan_v") return arch::GpuArch::titan_v(num_sms);
  if (name == "titan_v_32k") return arch::GpuArch::titan_v_32k_l1d(num_sms);
  throw SimError("unknown arch '" + name + "' (use titan_v|titan_v_32k)");
}

bool bool_knob(const harness::SpecParser& p, const std::string& key, bool fallback) {
  const std::string v = p.str_or(key, fallback ? "1" : "0");
  if (v == "0") return false;
  if (v == "1") return true;
  p.fail("key '" + key + "' expects 0|1, got '" + v + "'");
}

double frac_knob(const harness::SpecParser& p, const std::string& key, double fallback) {
  const std::string v = p.str_or(key, "");
  if (v.empty()) return fallback;
  char* end = nullptr;
  const double x = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0' || x < 0.0 || x > 1.0) {
    p.fail("key '" + key + "' expects a fraction in [0,1], got '" + v + "'");
  }
  return x;
}

/// Inverse of throttle::policy_to_spec.
throttle::Policy policy_from_spec(const std::string& spec) {
  const harness::SpecParser p = harness::SpecParser::parse(spec);
  const std::string& name = p.name();
  if (name == "baseline") {
    p.reject_unknown_keys();
    return throttle::Policy(throttle::Baseline{});
  }
  if (name == "bftt") {
    p.reject_unknown_keys();
    return throttle::Policy(throttle::Bftt{});
  }
  if (name == "catt") {
    throttle::Catt c;
    c.opts.conservative_irregular = bool_knob(p, "conservative", c.opts.conservative_irregular);
    c.opts.warp_level_first = bool_knob(p, "warp_first", c.opts.warp_level_first);
    c.opts.enable_tb_level = bool_knob(p, "tb_level", c.opts.enable_tb_level);
    c.opts.dedupe_tb_footprint = bool_knob(p, "dedupe", c.opts.dedupe_tb_footprint);
    c.opts.min_active_warps = static_cast<int>(p.int_or("min_warps", c.opts.min_active_warps));
    p.reject_unknown_keys();
    return throttle::Policy(std::move(c));
  }
  if (name == "fixed") {
    throttle::Fixed f;
    if (!p.has("n")) p.fail("policy 'fixed' needs n=N");
    f.factor.n_divisor = static_cast<int>(p.int_or("n", 1));
    f.factor.tb_limit = p.has("tb") ? static_cast<int>(p.int_or("tb", 0)) : 0;
    p.reject_unknown_keys();
    return throttle::Policy(f);
  }
  if (name == "dyncta") {
    throttle::Dyncta d;
    d.low_hit = frac_knob(p, "low", d.low_hit);
    d.high_hit = frac_knob(p, "high", d.high_hit);
    p.reject_unknown_keys();
    return throttle::Policy(d);
  }
  if (name == "adaptive") {
    // The whole spec is a scheduler PolicyConfig (PolicyConfig::parse does
    // its own knob validation); analysis options stay at their defaults.
    throttle::Adaptive a;
    a.sched = sim::sched::PolicyConfig::parse(spec);
    return throttle::Policy(std::move(a));
  }
  p.fail("unknown policy '" + name + "' (use baseline|catt|fixed|dyncta|bftt|adaptive)");
}

std::string ok_response(std::string_view body) {
  wire::Writer w;
  w.u8(rpc::kStatusOk);
  std::string out = w.take();
  out.append(body.data(), body.size());
  return out;
}

std::string error_response(const std::string& message) {
  wire::Writer w;
  w.u8(rpc::kStatusError);
  std::string out = w.take();
  out += message;
  return out;
}

}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  stats_service_.set_disk(opts_.disk.get());
}

Server::~Server() { stop(); }

void Server::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.empty() || opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw SimError("server: bad socket path '" + opts_.socket_path + "'");
  }
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(), opts_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw SimError("server: cannot create socket");
  // Replace a stale socket file from a previous (crashed) daemon.
  ::unlink(opts_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw SimError("server: cannot bind " + opts_.socket_path);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.insert(fd);
    conns_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Server::handle_connection(int fd) {
  try {
    while (!stopping_.load(std::memory_order_acquire)) {
      std::string request;
      try {
        request = rpc::recv_frame(fd);
      } catch (const SimError&) {
        break;  // client hung up (or stop() shut the socket down)
      }
      rpc::send_frame(fd, dispatch(request));
    }
  } catch (const std::exception& e) {
    log::warn("server: connection dropped: ", e.what());
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
}

std::string Server::dispatch(const std::string& request) {
  try {
    wire::Reader r(request);
    const std::uint8_t op = r.u8();
    switch (op) {
      case rpc::kOpPing: {
        r.expect_done("ping request");
        wire::Writer w;
        w.u32(exec::kEngineVersion);
        return ok_response(w.buffer());
      }
      case rpc::kOpRun:
      case rpc::kOpPlan:
      case rpc::kOpRunv: {
        // Single-flight on the raw request bytes: concurrent identical
        // queries (same op, same operands) share one computation.
        const std::uint64_t key = hash::Fnv1a{}.str(request).value();
        const std::string body = flights_.run(key, [&]() -> std::string {
          wire::Reader rr(request);
          rr.u8();  // op, already known
          if (op == rpc::kOpRun) return handle_run(rr);
          if (op == rpc::kOpPlan) return handle_plan(rr);
          return handle_runv(rr);
        });
        return ok_response(body);
      }
      case rpc::kOpStats: {
        return ok_response(handle_stats(r));
      }
      case rpc::kOpShutdown: {
        r.expect_done("shutdown request");
        {
          std::lock_guard<std::mutex> lock(stop_mu_);
          shutdown_requested_ = true;
        }
        stop_cv_.notify_all();
        return ok_response({});
      }
      default:
        throw SimError("unknown op " + std::to_string(op));
    }
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

Server::RunQuery Server::read_run_query(wire::Reader& r) {
  RunQuery q;
  q.workload = r.str();
  q.num_sms = static_cast<int>(r.u32());
  q.arch = r.str();
  q.policy_spec = r.str();
  q.sched_spec = r.str();
  return q;
}

std::string Server::run_query(const RunQuery& q) {
  const wl::Workload& w = wl::find_workload(q.workload, q.num_sms);
  const throttle::Policy policy = policy_from_spec(q.policy_spec);
  throttle::Runner& runner = runner_for(q.arch, q.num_sms, q.sched_spec);
  return throttle::encode_app_result(runner.run(w, policy));
}

std::string Server::handle_run(wire::Reader& r) {
  const RunQuery q = read_run_query(r);
  r.expect_done("run request");
  return run_query(q);
}

std::string Server::handle_runv(wire::Reader& r) {
  const std::uint32_t count = r.u32();
  std::vector<RunQuery> qs;
  qs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) qs.push_back(read_run_query(r));
  r.expect_done("runv request");
  // All queries are validated before any simulation starts, so a malformed
  // batch fails without burning work; results concatenate in query order.
  std::string out;
  for (const RunQuery& q : qs) out += run_query(q);
  return out;
}

std::string Server::handle_plan(wire::Reader& r) {
  const std::string workload = r.str();
  const int num_sms = static_cast<int>(r.u32());
  const std::string arch_name = r.str();
  const std::uint32_t index = r.u32();
  r.expect_done("plan request");

  const wl::Workload& w = wl::find_workload(workload, num_sms);
  if (index >= w.schedule.size()) {
    throw SimError("plan: schedule index " + std::to_string(index) + " out of range for '" +
                   workload + "'");
  }
  const wl::KernelRun& entry = w.schedule[index];
  const analysis::ThrottlePlan plan = planner_for(arch_name, num_sms)
                                          .plan_for(w.kernel(entry.kernel), entry.launch,
                                                    entry.params);
  return wire::encode_throttle_plan(plan);
}

std::string Server::handle_stats(wire::Reader& r) {
  const std::uint64_t key = r.u64();
  r.expect_done("stats request");
  wire::Writer w;
  if (const auto stats = stats_service_.stats_for(key); stats.has_value()) {
    w.b(true);
    wire::encode(w, *stats);
  } else {
    w.b(false);
  }
  return w.take();
}

throttle::Runner& Server::runner_for(const std::string& arch_name, int num_sms,
                                     const std::string& sched_spec) {
  const std::string key = arch_name + "/" + std::to_string(num_sms) + "/" + sched_spec;
  std::lock_guard<std::mutex> lock(services_mu_);
  auto it = runners_.find(key);
  if (it == runners_.end()) {
    auto runner = std::make_unique<throttle::Runner>(arch_by_name(arch_name, num_sms));
    if (!sched_spec.empty() && sched_spec != "none") {
      runner->sim_options.sched = sim::sched::PolicyConfig::parse(sched_spec);
    }
    runner->set_disk_cache(opts_.disk.get());
    it = runners_.emplace(key, std::move(runner)).first;
  }
  return *it->second;
}

exec::PlanService& Server::planner_for(const std::string& arch_name, int num_sms) {
  const std::string key = arch_name + "/" + std::to_string(num_sms);
  std::lock_guard<std::mutex> lock(services_mu_);
  auto it = planners_.find(key);
  if (it == planners_.end()) {
    it = planners_
             .emplace(key, std::make_unique<exec::PlanService>(arch_by_name(arch_name, num_sms),
                                                               opts_.disk.get()))
             .first;
  }
  return *it->second;
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Server::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    shutdown_requested_ = true;
  }
  stop_cv_.notify_all();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  {
    // Unblock connection threads parked in recv_frame().
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop is down, so conns_ can no longer grow.
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::unlink(opts_.socket_path.c_str());
    listen_fd_ = -1;
  }
}

}  // namespace catt::bench
