#include "harness/harness.hpp"

#include <filesystem>
#include <fstream>
#include <map>

#include "common/log.hpp"

namespace catt::bench {

arch::GpuArch max_l1d_arch() { return arch::GpuArch::titan_v(kNumSms); }

arch::GpuArch small_l1d_arch() { return arch::GpuArch::titan_v_32k_l1d(kNumSms); }

std::string kernel_label(const wl::Workload& w, std::size_t schedule_index) {
  std::map<std::string, int> first_seen;
  int next = 0;
  int my_number = 0;
  for (std::size_t i = 0; i < w.schedule.size(); ++i) {
    const std::string& k = w.schedule[i].kernel;
    auto it = first_seen.find(k);
    int num;
    if (it == first_seen.end()) {
      num = ++next;
      first_seen[k] = num;
    } else {
      num = it->second;
    }
    if (i == schedule_index) my_number = num;
  }
  std::string upper = w.name;
  for (auto& c : upper) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return upper + "#" + std::to_string(my_number);
}

double speedup(std::int64_t baseline_cycles, std::int64_t cycles) {
  return cycles == 0 ? 0.0
                     : static_cast<double>(baseline_cycles) / static_cast<double>(cycles);
}

double Comparison::bftt_speedup() const {
  return speedup(baseline.total_cycles, bftt.best.total_cycles);
}

double Comparison::catt_speedup() const {
  return speedup(baseline.total_cycles, catt.total_cycles);
}

Comparison compare(throttle::Runner& runner, const wl::Workload& w) {
  Comparison c;
  c.baseline = runner.run_baseline(w);
  c.bftt = runner.run_bftt(w);
  c.catt = runner.run_catt(w);
  return c;
}

void write_result_file(const std::string& name, const std::string& content) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories("results", ec);
  const std::string path = "results/" + name;
  std::ofstream f(path);
  if (!f) {
    log::warn("could not write ", path);
    return;
  }
  f << content;
}

}  // namespace catt::bench
