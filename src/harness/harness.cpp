#include "harness/harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/profile.hpp"
#include "common/string_util.hpp"
#include "harness/spec.hpp"
#include "obs/obs.hpp"
#include "throttle/remote.hpp"

namespace catt::bench {

arch::GpuArch max_l1d_arch() { return arch::GpuArch::titan_v(kNumSms); }

arch::GpuArch small_l1d_arch() { return arch::GpuArch::titan_v_32k_l1d(kNumSms); }

std::string kernel_label(const wl::Workload& w, std::size_t schedule_index) {
  std::map<std::string, int> first_seen;
  int next = 0;
  int my_number = 0;
  for (std::size_t i = 0; i < w.schedule.size(); ++i) {
    const std::string& k = w.schedule[i].kernel;
    auto it = first_seen.find(k);
    int num;
    if (it == first_seen.end()) {
      num = ++next;
      first_seen[k] = num;
    } else {
      num = it->second;
    }
    if (i == schedule_index) my_number = num;
  }
  std::string upper = w.name;
  for (auto& c : upper) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return upper + "#" + std::to_string(my_number);
}

double speedup(std::int64_t baseline_cycles, std::int64_t cycles) {
  return cycles == 0 ? 0.0
                     : static_cast<double>(baseline_cycles) / static_cast<double>(cycles);
}

double Comparison::bftt_speedup() const {
  return speedup(baseline.total_cycles, bftt.best.total_cycles);
}

double Comparison::catt_speedup() const {
  return speedup(baseline.total_cycles, catt.total_cycles);
}

Comparison compare(throttle::Runner& runner, const wl::Workload& w) {
  Comparison c;
  // The baseline goes first so its per-launch simulations are cached
  // before the BFTT sweep probes its identity candidate and CATT probes
  // any kernels it leaves untransformed.
  c.baseline = runner.run(w, throttle::Baseline{});
  c.bftt = runner.bftt_sweep(w);
  c.catt = runner.run(w, throttle::Catt{});
  return c;
}

std::unique_ptr<exec::Client> client_from_env() {
  const char* env = std::getenv("CATT_SERVE_SOCKET");
  if (env == nullptr || *env == '\0') return nullptr;
  try {
    auto client = std::make_unique<exec::Client>(env);
    if (client->ping()) return client;
    std::fprintf(stderr, "[bench] daemon at %s answered with a version mismatch; "
                         "running locally\n", env);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[bench] CATT_SERVE_SOCKET=%s unreachable (%s); running locally\n",
                 env, e.what());
  }
  return nullptr;
}

namespace {

/// The wire protocol names two machines; anything else (capacity-swept
/// arches, tests) cannot be asked of the daemon.
std::string protocol_arch_name(const arch::GpuArch& a) {
  if (a.name == arch::GpuArch::titan_v(a.num_sms).name) return "titan_v";
  if (a.name == arch::GpuArch::titan_v_32k_l1d(a.num_sms).name) return "titan_v_32k";
  return "";
}

}  // namespace

AutoRunner::AutoRunner(throttle::Runner& local) : local_(&local) {
  arch_name_ = protocol_arch_name(local.gpu_arch());
  if (!arch_name_.empty()) client_ = client_from_env();
}

throttle::AppResult AutoRunner::run(const wl::Workload& w, const throttle::Policy& policy) {
  if (client_ != nullptr) {
    const sim::sched::PolicyConfig& sched = local_->sim_options.sched;
    throttle::RemoteRunner remote(*client_, arch_name_, local_->gpu_arch().num_sms,
                                  sched.enabled() ? sched.str() : "");
    return remote.run(w.name, policy);
  }
  return local_->run(w, policy);
}

throttle::Runner::BfttOutcome AutoRunner::bftt_sweep(const wl::Workload& w) {
  return local_->bftt_sweep(w);
}

Comparison compare(AutoRunner& runner, const wl::Workload& w) {
  Comparison c;
  c.baseline = runner.run(w, throttle::Baseline{});
  c.bftt = runner.bftt_sweep(w);
  c.catt = runner.run(w, throttle::Catt{});
  return c;
}

WriteStatus write_result_file(const std::string& name, const std::string& content) {
  namespace fs = std::filesystem;
  std::string dir = "results";
  if (const char* env = std::getenv("CATT_RESULTS_DIR"); env != nullptr && *env != '\0') {
    dir = env;
  }
  WriteStatus st;
  st.path = dir + "/" + name;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    st.message = "could not create " + dir + ": " + ec.message();
    return st;
  }
  std::ofstream f(st.path);
  if (!f) {
    st.message = "could not open " + st.path + " for writing";
    return st;
  }
  obs::Accum write_timer;
  if (const obs::SimObs* ob = obs::resolve(nullptr)) {
    obs::Registry& reg = ob->registry_or_global();
    reg.add(reg.counter("harness.reports"), 1);
    reg.add(reg.counter("harness.report_bytes"), content.size());
    write_timer = obs::Accum(&reg, reg.counter("harness.write_us"));
  }
  write_timer.start();
  f << content;
  f.flush();
  write_timer.stop();
  if (!f) {
    st.message = "short write to " + st.path;
    return st;
  }
  if (prof::enabled()) {
    prof::report("report=" + name + " bytes=" + std::to_string(content.size()) +
                 " write_ms=" + std::to_string(write_timer.ms()));
  }
  st.ok = true;
  return st;
}

int exit_status(const WriteStatus& st) {
  if (st) return 0;
  std::fprintf(stderr, "[bench] result write failed: %s\n", st.message.c_str());
  return 1;
}

sim::sched::PolicyConfig sched_from_args(int argc, char** argv) {
  const std::string spec = harness::flag_or_env(argc, argv, "sched", "CATT_SCHED");
  if (spec.empty()) return {};
  try {
    return sim::sched::PolicyConfig::parse(spec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[bench] %s\n", e.what());
    std::exit(2);
  }
}

namespace {

/// One `--policies=` token -> a comparison column. Runtime schemes (ccws,
/// dyncta) ride on baseline code with the token as the scheduler spec;
/// adaptive rides on the CATT transform with the token as its scheduler
/// config; everything else runs under the default scheduler.
PolicyColumn policy_column(const std::string& token) {
  const harness::SpecParser p = harness::SpecParser::parse(token);
  const std::string& name = p.name();
  if (name == "baseline") {
    p.reject_unknown_keys();
    return {token, throttle::Baseline{}, {}};
  }
  if (name == "ccws" || name == "dyncta") {
    // Knob validation is PolicyConfig::parse's job (same vocabulary as
    // --sched=), so the SpecParser keys are deliberately left unread.
    return {token, throttle::Baseline{}, sim::sched::PolicyConfig::parse(token)};
  }
  if (name == "catt") {
    p.reject_unknown_keys();
    return {token, throttle::Catt{}, {}};
  }
  if (name == "adaptive") {
    throttle::Adaptive a;
    a.sched = sim::sched::PolicyConfig::parse(token);
    return {token, std::move(a), {}};
  }
  if (name == "bftt") {
    p.reject_unknown_keys();
    return {token, throttle::Bftt{}, {}};
  }
  if (name == "fixed") {
    throttle::Fixed f;
    if (!p.has("n")) p.fail("policy 'fixed' needs n=N");
    f.factor.n_divisor = static_cast<int>(p.int_or("n", 1));
    f.factor.tb_limit = p.has("tb") ? static_cast<int>(p.int_or("tb", 0)) : 0;
    p.reject_unknown_keys();
    return {token, f, {}};
  }
  p.fail("unknown policy column '" + name +
         "' (use baseline|ccws|dyncta|catt|adaptive|bftt|fixed)");
}

}  // namespace

std::vector<PolicyColumn> policies_from_args(int argc, char** argv,
                                             const std::string& fallback) {
  std::string spec = harness::flag_or_env(argc, argv, "policies", "CATT_POLICIES");
  if (spec.empty()) spec = fallback;
  std::vector<PolicyColumn> out;
  try {
    for (const std::string& token : split(spec, '+')) {
      if (token.empty()) continue;
      out.push_back(policy_column(token));
    }
    if (out.empty()) throw SimError("--policies: empty policy list '" + spec + "'");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[bench] %s\n", e.what());
    std::exit(2);
  }
  return out;
}

int sim_threads_from_args(int argc, char** argv) {
  const std::string spec = harness::flag_or_env(argc, argv, "sim-threads", "CATT_SIM_THREADS");
  if (spec.empty()) return 0;
  std::size_t pos = 0;
  int n = 0;
  try {
    n = std::stoi(spec, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != spec.size() || n < 0) {
    std::fprintf(stderr, "[bench] --sim-threads needs a non-negative integer, got '%s'\n",
                 spec.c_str());
    std::exit(2);
  }
  return n;
}

int trace_threads_from_args(int argc, char** argv) {
  const std::string spec =
      harness::flag_or_env(argc, argv, "trace-threads", "CATT_TRACE_THREADS");
  if (spec.empty()) return 0;
  std::size_t pos = 0;
  int n = 0;
  try {
    n = std::stoi(spec, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != spec.size() || n < 0) {
    std::fprintf(stderr, "[bench] --trace-threads needs a non-negative integer, got '%s'\n",
                 spec.c_str());
    std::exit(2);
  }
  return n;
}

std::shared_ptr<exec::DiskCache> cache_from_args(int argc, char** argv) {
  std::string spec = harness::flag_or_env(argc, argv, "cache", nullptr);
  if (spec.empty()) {
    // The env fallback is a bare directory, not a spec: CATT_CACHE_DIR is
    // what CI and the daemon quick-start export.
    if (const char* env = std::getenv("CATT_CACHE_DIR"); env != nullptr && *env != '\0') {
      spec = "dir:path=" + std::string(env);
    }
  }
  if (spec.empty()) return nullptr;
  try {
    const harness::SpecParser p = harness::SpecParser::parse(spec);
    if (p.name() == "none") {
      p.reject_unknown_keys();
      return nullptr;
    }
    if (p.name() != "dir") p.fail("unknown cache backend '" + p.name() + "' (use dir|none)");
    exec::DiskCacheConfig cfg;
    cfg.dir = p.str_or("path", "");
    if (cfg.dir.empty()) p.fail("backend 'dir' needs path=DIR");
    cfg.evict = p.enum_or("evict", {"lru", "none"}, "lru") == "lru"
                    ? exec::DiskCacheConfig::Evict::kLru
                    : exec::DiskCacheConfig::Evict::kNone;
    cfg.max_bytes = static_cast<std::uint64_t>(p.int_or("max_mb", 0)) * 1024 * 1024;
    p.reject_unknown_keys();
    return std::make_shared<exec::DiskCache>(cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[bench] %s\n", e.what());
    std::exit(2);
  }
}

ObsSession::ObsSession(int argc, char** argv, std::string bench_name)
    : bench_name_(std::move(bench_name)) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kFlag = "--trace-out=";
    if (arg.rfind(kFlag, 0) == 0) trace_out_ = std::string(arg.substr(kFlag.size()));
  }
  if (trace_out_.empty()) {
    if (const char* env = std::getenv("CATT_TRACE_OUT"); env != nullptr && *env != '\0') {
      trace_out_ = env;
    }
  }
  // A requested trace file implies tracing; must happen before the first
  // launch freezes the environment-derived SimObs.
  if (!trace_out_.empty()) obs::override_trace_level(1);
}

ObsSession::~ObsSession() {
  const obs::SimObs* ob = obs::env_sim_obs();
  if (ob == nullptr) return;

  // Metrics registry dump. [obs] lines bypass the log-level threshold for
  // the same reason [profile] lines do: the env knob is the opt-in.
  std::istringstream lines(ob->registry_or_global().render());
  for (std::string line; std::getline(lines, line);) {
    if (!line.empty()) log::write(log::Level::kInfo, "[obs] " + line);
  }

  if (ob->trace_level <= 0) return;
  obs::Tracer& tracer = ob->tracer_or_global();
  const std::string summary = " events=" + std::to_string(tracer.recorded()) +
                              " dropped=" + std::to_string(tracer.dropped());
  if (!trace_out_.empty()) {
    if (tracer.write_json(trace_out_)) {
      log::write(log::Level::kInfo, "[obs] trace=" + trace_out_ + summary);
    }
  } else if (WriteStatus st = write_result_file(bench_name_ + "_trace.json", tracer.to_json())) {
    log::write(log::Level::kInfo, "[obs] trace=" + st.path + summary);
  } else {
    log::write(log::Level::kWarn, "[obs] trace export failed: " + st.message);
  }
}

}  // namespace catt::bench
