#include "harness/harness.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>

#include "common/profile.hpp"

namespace catt::bench {

arch::GpuArch max_l1d_arch() { return arch::GpuArch::titan_v(kNumSms); }

arch::GpuArch small_l1d_arch() { return arch::GpuArch::titan_v_32k_l1d(kNumSms); }

std::string kernel_label(const wl::Workload& w, std::size_t schedule_index) {
  std::map<std::string, int> first_seen;
  int next = 0;
  int my_number = 0;
  for (std::size_t i = 0; i < w.schedule.size(); ++i) {
    const std::string& k = w.schedule[i].kernel;
    auto it = first_seen.find(k);
    int num;
    if (it == first_seen.end()) {
      num = ++next;
      first_seen[k] = num;
    } else {
      num = it->second;
    }
    if (i == schedule_index) my_number = num;
  }
  std::string upper = w.name;
  for (auto& c : upper) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return upper + "#" + std::to_string(my_number);
}

double speedup(std::int64_t baseline_cycles, std::int64_t cycles) {
  return cycles == 0 ? 0.0
                     : static_cast<double>(baseline_cycles) / static_cast<double>(cycles);
}

double Comparison::bftt_speedup() const {
  return speedup(baseline.total_cycles, bftt.best.total_cycles);
}

double Comparison::catt_speedup() const {
  return speedup(baseline.total_cycles, catt.total_cycles);
}

Comparison compare(throttle::Runner& runner, const wl::Workload& w) {
  Comparison c;
  // The baseline goes first so its per-launch simulations are cached
  // before the BFTT sweep probes its identity candidate and CATT probes
  // any kernels it leaves untransformed.
  c.baseline = runner.run(w, throttle::Baseline{});
  c.bftt = runner.bftt_sweep(w);
  c.catt = runner.run(w, throttle::Catt{});
  return c;
}

WriteStatus write_result_file(const std::string& name, const std::string& content) {
  namespace fs = std::filesystem;
  std::string dir = "results";
  if (const char* env = std::getenv("CATT_RESULTS_DIR"); env != nullptr && *env != '\0') {
    dir = env;
  }
  WriteStatus st;
  st.path = dir + "/" + name;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    st.message = "could not create " + dir + ": " + ec.message();
    return st;
  }
  std::ofstream f(st.path);
  if (!f) {
    st.message = "could not open " + st.path + " for writing";
    return st;
  }
  const prof::Clock::time_point t0 = prof::Clock::now();
  f << content;
  f.flush();
  if (!f) {
    st.message = "short write to " + st.path;
    return st;
  }
  if (prof::enabled()) {
    prof::report("report=" + name + " bytes=" + std::to_string(content.size()) +
                 " write_ms=" + std::to_string(prof::ms_between(t0, prof::Clock::now())));
  }
  st.ok = true;
  return st;
}

}  // namespace catt::bench
