// The catt_serve daemon core: a unix-socket RPC server wrapping the
// PlanService / SimService pair so many sweep processes share one warm
// cache hierarchy. Protocol: see exec/client.hpp.
//
// Concurrency model: one accept thread, one thread per connection.
// Requests that compute (kOpRun, kOpPlan) are single-flighted on the raw
// request bytes — concurrent identical queries from different clients
// share one execution and every follower gets a copy of the leader's
// response. Distinct queries run concurrently; Runner instances are
// keyed by (arch, SM count, sched spec) so each has fixed SimOptions,
// and all of them publish into the one attached DiskCache.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/disk_cache.hpp"
#include "exec/plan_service.hpp"
#include "exec/sim_service.hpp"
#include "exec/single_flight.hpp"
#include "throttle/runner.hpp"

namespace catt::exec::wire {
class Reader;
}

namespace catt::bench {

struct ServerOptions {
  std::string socket_path;
  /// Shared persistent tier; null = in-memory caches only.
  std::shared_ptr<exec::DiskCache> disk;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket (replacing a stale file) and starts serving.
  /// Throws catt::SimError when the socket cannot be bound.
  void start();

  /// Blocks until a client sends kOpShutdown (or stop() is called).
  void wait();

  /// Shuts down: stops accepting, unblocks every connection, joins all
  /// threads, removes the socket file. Idempotent.
  void stop();

  const std::string& socket_path() const { return opts_.socket_path; }

 private:
  void accept_loop();
  void handle_connection(int fd);
  /// Full request payload in, full response payload ([status][body]) out.
  std::string dispatch(const std::string& request);
  /// One kOpRun body, decoded (kOpRunv packs `count` of these).
  struct RunQuery {
    std::string workload;
    int num_sms = 0;
    std::string arch;
    std::string policy_spec;
    std::string sched_spec;
  };
  static RunQuery read_run_query(exec::wire::Reader& r);
  std::string run_query(const RunQuery& q);
  std::string handle_run(exec::wire::Reader& r);
  std::string handle_runv(exec::wire::Reader& r);
  std::string handle_plan(exec::wire::Reader& r);
  std::string handle_stats(exec::wire::Reader& r);
  throttle::Runner& runner_for(const std::string& arch_name, int num_sms,
                               const std::string& sched_spec);
  exec::PlanService& planner_for(const std::string& arch_name, int num_sms);

  ServerOptions opts_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::vector<std::thread> conns_;
  std::set<int> conn_fds_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool shutdown_requested_ = false;

  std::mutex services_mu_;
  std::map<std::string, std::unique_ptr<throttle::Runner>> runners_;
  std::map<std::string, std::unique_ptr<exec::PlanService>> planners_;
  /// L1 for the kOpStats lookup path (kOpRun answers publish to disk, so
  /// a disk-attached server can serve any previously simulated key).
  exec::SimCache stats_l1_;
  exec::SimService stats_service_{stats_l1_};
  exec::SingleFlight<std::uint64_t, std::string> flights_;
};

}  // namespace catt::bench
