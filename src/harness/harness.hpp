// Experiment harness shared by the bench binaries: standard machine
// configurations, the baseline/BFTT/CATT comparison each figure needs,
// and uniform labeling/formatting of results.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "common/table.hpp"
#include "exec/disk_cache.hpp"
#include "throttle/runner.hpp"
#include "workloads/workload.hpp"

namespace catt::bench {

/// Number of simulated SMs used by all experiments (per-SM contention is
/// what matters; see DESIGN.md "Simulator scaling").
inline constexpr int kNumSms = 2;

/// Paper Section 5 machine: Volta with the L1D/shared split maximized.
arch::GpuArch max_l1d_arch();

/// Figure 10 machine: the L1D capped at 32 KB.
arch::GpuArch small_l1d_arch();

/// Label like "ATAX#1" for the i-th schedule entry of a workload (kernels
/// are numbered by first appearance in the schedule, as in the paper).
std::string kernel_label(const wl::Workload& w, std::size_t schedule_index);

/// Baseline + BFTT + CATT on one workload under one machine.
struct Comparison {
  throttle::AppResult baseline;
  throttle::Runner::BfttOutcome bftt;
  throttle::AppResult catt;

  double bftt_speedup() const;
  double catt_speedup() const;
};

/// Baseline + BFTT + CATT under one Runner. The baseline's launch
/// simulations are shared through the Runner's SimCache: BFTT's identity
/// candidate (N=1, uncapped) and CATT on untransformed workloads reuse
/// them instead of re-simulating.
Comparison compare(throttle::Runner& runner, const wl::Workload& w);

/// Speedup of `cycles` relative to `baseline_cycles` (>1 = faster).
double speedup(std::int64_t baseline_cycles, std::int64_t cycles);

/// Result of write_result_file: `ok` plus the resolved path, and a
/// diagnostic message when the write failed. Truthy on success, so callers
/// can `if (auto st = write_result_file(...); !st) ...` (an expected-style
/// status instead of warn-and-swallow).
struct WriteStatus {
  bool ok = false;
  std::string path;
  std::string message;

  explicit operator bool() const { return ok; }
};

/// Writes `content` to <dir>/<name>, creating the directory if needed.
/// `dir` is the CATT_RESULTS_DIR environment variable when set and
/// non-empty, else "results" under the current directory. Never throws;
/// failures are reported in the returned status (benches should not die on
/// a read-only filesystem, but CI must be able to see — and redirect —
/// where results go).
WriteStatus write_result_file(const std::string& name, const std::string& content);

/// Bench-main epilogue: logs a failed write to stderr and maps it to a
/// nonzero process exit, so a full disk or unwritable CATT_RESULTS_DIR
/// fails CI instead of silently yielding truncated CSVs. Combine multiple
/// writes with `rc |= exit_status(...)`.
int exit_status(const WriteStatus& st);

/// Parses the shared scheduler-policy flag `--sched=SPEC` (else the
/// CATT_SCHED environment variable, else "none") for benches to assign to
/// Runner::sim_options.sched. Spec syntax: see sched::PolicyConfig::parse.
/// Exits with a diagnostic on a malformed spec.
sim::sched::PolicyConfig sched_from_args(int argc, char** argv);

/// Parses the shared disk-cache flag `--cache=SPEC` (else the
/// CATT_CACHE_DIR environment variable as a plain directory path, else
/// caching off). Spec syntax, via harness::SpecParser:
///
///   none                                     caching off
///   dir:path=DIR[,evict=lru|none][,max_mb=N] disk cache rooted at DIR
///
/// Returns null when caching is off; otherwise the opened cache, to hand
/// to Runner::set_disk_cache(). Exits 2 on a malformed spec (matching
/// --sched= semantics).
std::shared_ptr<exec::DiskCache> cache_from_args(int argc, char** argv);

/// RAII observability session for bench main()s. Parses `--trace-out=PATH`
/// (or the CATT_TRACE_OUT environment variable) and raises the CATT_TRACE
/// floor to 1 when a path is given, so asking for a trace file implies
/// coarse tracing. At destruction — i.e. after the bench body ran — it
/// exports the Chrome trace JSON (to the explicit path, else to
/// `<bench>_trace.json` next to the result CSVs) and dumps the metrics
/// registry as `[obs]` stderr lines. A no-op when no obs knob is set.
class ObsSession {
 public:
  ObsSession(int argc, char** argv, std::string bench_name);
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// The explicit trace output path ("" = default results location).
  const std::string& trace_out() const { return trace_out_; }

 private:
  std::string bench_name_;
  std::string trace_out_;
};

}  // namespace catt::bench
