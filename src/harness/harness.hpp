// Experiment harness shared by the bench binaries: standard machine
// configurations, the baseline/BFTT/CATT comparison each figure needs,
// and uniform labeling/formatting of results.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/gpu_arch.hpp"
#include "common/table.hpp"
#include "exec/client.hpp"
#include "exec/disk_cache.hpp"
#include "throttle/runner.hpp"
#include "workloads/workload.hpp"

namespace catt::bench {

/// Number of simulated SMs used by all experiments (per-SM contention is
/// what matters; see DESIGN.md "Simulator scaling").
inline constexpr int kNumSms = 2;

/// Paper Section 5 machine: Volta with the L1D/shared split maximized.
arch::GpuArch max_l1d_arch();

/// Figure 10 machine: the L1D capped at 32 KB.
arch::GpuArch small_l1d_arch();

/// Label like "ATAX#1" for the i-th schedule entry of a workload (kernels
/// are numbered by first appearance in the schedule, as in the paper).
std::string kernel_label(const wl::Workload& w, std::size_t schedule_index);

/// Baseline + BFTT + CATT on one workload under one machine.
struct Comparison {
  throttle::AppResult baseline;
  throttle::Runner::BfttOutcome bftt;
  throttle::AppResult catt;

  double bftt_speedup() const;
  double catt_speedup() const;
};

/// Baseline + BFTT + CATT under one Runner. The baseline's launch
/// simulations are shared through the Runner's SimCache: BFTT's identity
/// candidate (N=1, uncapped) and CATT on untransformed workloads reuse
/// them instead of re-simulating.
Comparison compare(throttle::Runner& runner, const wl::Workload& w);

/// Daemon auto-detection (ROADMAP item 1): when CATT_SERVE_SOCKET is set
/// and a catt_serve daemon answers a ping there, returns the connected
/// client. Returns null when the variable is unset — and also when it
/// names a dead/stale socket, after one stderr warning, so benches degrade
/// to local simulation instead of dying (harness_test pins this fallback).
std::unique_ptr<exec::Client> client_from_env();

/// Runner facade the bench drivers route policy runs through: when
/// client_from_env() finds a live daemon and the wrapped Runner's arch is
/// one the wire protocol names (titan_v / titan_v_32k), run() is answered
/// by the daemon — which simulates at most once per distinct query across
/// all connected clients — and is byte-identical to the local result
/// (pinned by runner_test). Everything else (no daemon, unknown arch, the
/// BFTT sweep whose per-candidate vector the protocol does not carry)
/// falls back to the wrapped local Runner. The scheduler spec is re-read
/// from the local Runner's sim_options on every call, so benches that
/// flip policies between runs stay correct.
class AutoRunner {
 public:
  /// Wraps `local` (borrowed; must outlive the AutoRunner).
  explicit AutoRunner(throttle::Runner& local);

  throttle::AppResult run(const wl::Workload& w, const throttle::Policy& policy);
  /// Always local: the sweep vector is not available over the wire.
  throttle::Runner::BfttOutcome bftt_sweep(const wl::Workload& w);

  bool uses_daemon() const { return client_ != nullptr; }
  throttle::Runner& local() { return *local_; }

 private:
  throttle::Runner* local_;
  std::unique_ptr<exec::Client> client_;
  std::string arch_name_;  // protocol name; empty = arch not wire-nameable
};

/// compare() with daemon routing: baseline and CATT go through `runner`
/// (remote when available), the BFTT sweep runs locally.
Comparison compare(AutoRunner& runner, const wl::Workload& w);

/// Speedup of `cycles` relative to `baseline_cycles` (>1 = faster).
double speedup(std::int64_t baseline_cycles, std::int64_t cycles);

/// Result of write_result_file: `ok` plus the resolved path, and a
/// diagnostic message when the write failed. Truthy on success, so callers
/// can `if (auto st = write_result_file(...); !st) ...` (an expected-style
/// status instead of warn-and-swallow).
struct WriteStatus {
  bool ok = false;
  std::string path;
  std::string message;

  explicit operator bool() const { return ok; }
};

/// Writes `content` to <dir>/<name>, creating the directory if needed.
/// `dir` is the CATT_RESULTS_DIR environment variable when set and
/// non-empty, else "results" under the current directory. Never throws;
/// failures are reported in the returned status (benches should not die on
/// a read-only filesystem, but CI must be able to see — and redirect —
/// where results go).
WriteStatus write_result_file(const std::string& name, const std::string& content);

/// Bench-main epilogue: logs a failed write to stderr and maps it to a
/// nonzero process exit, so a full disk or unwritable CATT_RESULTS_DIR
/// fails CI instead of silently yielding truncated CSVs. Combine multiple
/// writes with `rc |= exit_status(...)`.
int exit_status(const WriteStatus& st);

/// Parses the shared scheduler-policy flag `--sched=SPEC` (else the
/// CATT_SCHED environment variable, else "none") for benches to assign to
/// Runner::sim_options.sched. Spec syntax: see sched::PolicyConfig::parse.
/// Exits with a diagnostic on a malformed spec.
sim::sched::PolicyConfig sched_from_args(int argc, char** argv);

/// One column of a multi-policy comparison bench (fig_dynamic_compare):
/// what to run and the scheduler policy to install on the Runner's
/// SimOptions while running it (runtime schemes ride on baseline code;
/// static/hybrid schemes carry their own configuration in `policy`).
struct PolicyColumn {
  std::string label;  // the spec token, used as the column header
  throttle::Policy policy;
  sim::sched::PolicyConfig sched;
};

/// Parses the shared policy-list flag `--policies=a+b+...` (else the
/// CATT_POLICIES environment variable, else `fallback`). Tokens are
/// '+'-separated — ',' belongs to each token's own knob syntax — and each
/// token is a SpecParser spec:
///
///   baseline             unmodified code, default scheduler
///   ccws[:key=v,...]     baseline code under the CCWS scheduler policy
///   dyncta[:key=v,...]   baseline code under the DYNCTA scheduler policy
///   catt                 CATT static transform, default scheduler
///   adaptive[:key=v,...] CATT static transform + adaptive scheduler
///   bftt                 best-fixed sweep winner
///   fixed:n=N[,tb=M]     one fixed throttling factor
///
/// Exits 2 on a malformed spec or an empty list (matching --sched=).
std::vector<PolicyColumn> policies_from_args(int argc, char** argv,
                                             const std::string& fallback);

/// Parses the shared timing-engine thread flag `--sim-threads=N` (else the
/// CATT_SIM_THREADS environment variable, else 0 = serial default) for
/// benches to assign to Runner::sim_options.sim_threads. Results are
/// bit-identical at any value; this only trades wall time. Exits 2 on a
/// malformed value.
int sim_threads_from_args(int argc, char** argv);

/// Parses the shared trace-generation worker flag `--trace-threads=N`
/// (else the CATT_TRACE_THREADS environment variable, else 0 = serial
/// default) for benches to assign to Runner::sim_options.trace_threads.
/// Results are bit-identical at any value; this only trades wall time.
/// Exits 2 on a malformed value.
int trace_threads_from_args(int argc, char** argv);

/// Parses the shared disk-cache flag `--cache=SPEC` (else the
/// CATT_CACHE_DIR environment variable as a plain directory path, else
/// caching off). Spec syntax, via harness::SpecParser:
///
///   none                                     caching off
///   dir:path=DIR[,evict=lru|none][,max_mb=N] disk cache rooted at DIR
///
/// Returns null when caching is off; otherwise the opened cache, to hand
/// to Runner::set_disk_cache(). Exits 2 on a malformed spec (matching
/// --sched= semantics).
std::shared_ptr<exec::DiskCache> cache_from_args(int argc, char** argv);

/// RAII observability session for bench main()s. Parses `--trace-out=PATH`
/// (or the CATT_TRACE_OUT environment variable) and raises the CATT_TRACE
/// floor to 1 when a path is given, so asking for a trace file implies
/// coarse tracing. At destruction — i.e. after the bench body ran — it
/// exports the Chrome trace JSON (to the explicit path, else to
/// `<bench>_trace.json` next to the result CSVs) and dumps the metrics
/// registry as `[obs]` stderr lines. A no-op when no obs knob is set.
class ObsSession {
 public:
  ObsSession(int argc, char** argv, std::string bench_name);
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// The explicit trace output path ("" = default results location).
  const std::string& trace_out() const { return trace_out_; }

 private:
  std::string bench_name_;
  std::string trace_out_;
};

}  // namespace catt::bench
