#include "harness/spec.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace catt::harness {

SpecParser SpecParser::parse(std::string_view spec) {
  SpecParser p;
  p.spec_ = std::string(spec);
  std::string knobs;
  if (const auto colon = p.spec_.find(':'); colon != std::string::npos) {
    p.name_ = p.spec_.substr(0, colon);
    knobs = p.spec_.substr(colon + 1);
  } else {
    p.name_ = p.spec_;
  }
  if (p.name_.empty()) p.fail("empty name");
  for (const std::string& kv : split(knobs, ',')) {
    if (kv.empty()) continue;
    const auto eq = kv.find('=');
    if (eq == std::string::npos) p.fail("knob '" + kv + "' is not key=value");
    std::string key = kv.substr(0, eq);
    if (key.empty()) p.fail("knob '" + kv + "' has an empty key");
    if (p.has(key)) p.fail("duplicate key '" + key + "'");
    p.kvs_.emplace_back(std::move(key), kv.substr(eq + 1));
  }
  p.consumed_.assign(p.kvs_.size(), false);
  return p;
}

bool SpecParser::has(const std::string& key) const {
  for (const auto& [k, v] : kvs_) {
    if (k == key) return true;
  }
  return false;
}

std::string SpecParser::str_or(const std::string& key, std::string fallback) const {
  for (std::size_t i = 0; i < kvs_.size(); ++i) {
    if (kvs_[i].first == key) {
      consumed_[i] = true;
      return kvs_[i].second;
    }
  }
  return fallback;
}

std::int64_t SpecParser::int_or(const std::string& key, std::int64_t fallback) const {
  const std::string v = str_or(key, "");
  if (v.empty() && !has(key)) return fallback;
  char* end = nullptr;
  const long long x = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || x <= 0) {
    fail("key '" + key + "' expects a positive integer, got '" + v + "'");
  }
  return static_cast<std::int64_t>(x);
}

std::string SpecParser::enum_or(const std::string& key,
                                std::initializer_list<std::string_view> allowed,
                                std::string fallback) const {
  const std::string v = str_or(key, std::move(fallback));
  for (const std::string_view a : allowed) {
    if (v == a) return v;
  }
  std::string list;
  for (const std::string_view a : allowed) {
    if (!list.empty()) list += "|";
    list += a;
  }
  fail("key '" + key + "' expects " + list + ", got '" + v + "'");
}

void SpecParser::reject_unknown_keys() const {
  for (std::size_t i = 0; i < kvs_.size(); ++i) {
    if (!consumed_[i]) fail("unknown key '" + kvs_[i].first + "'");
  }
}

void SpecParser::fail(const std::string& why) const {
  throw Error("bad spec '" + spec_ + "': " + why);
}

std::string flag_or_env(int argc, char** argv, std::string_view flag, const char* env) {
  std::string value;
  const std::string prefix = "--" + std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) value = std::string(arg.substr(prefix.size()));
  }
  if (value.empty() && env != nullptr) {
    if (const char* v = std::getenv(env); v != nullptr && *v != '\0') value = v;
  }
  return value;
}

}  // namespace catt::harness
