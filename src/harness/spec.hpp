// Reusable parser for the "name[:key=value,...]" command-line spec grammar
// shared by --sched= and --cache=. The harness owns flag/env extraction
// and spec decomposition; each consumer keeps its own key vocabulary and
// semantics (sched delegates to sim::sched::PolicyConfig::parse, the cache
// spec is interpreted by bench::cache_from_args).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace catt::harness {

/// A decomposed spec. Getters consume keys; reject_unknown_keys() then
/// catches typos ("evcit=lru") instead of silently ignoring them. All
/// failures throw catt::Error with a diagnostic naming the full spec.
class SpecParser {
 public:
  /// Splits "name[:key=value,...]". Throws on an empty name, a knob
  /// without '=', an empty key, or a duplicate key.
  static SpecParser parse(std::string_view spec);

  const std::string& spec() const { return spec_; }
  const std::string& name() const { return name_; }

  bool has(const std::string& key) const;

  /// The raw value (consumes the key); `fallback` when absent.
  std::string str_or(const std::string& key, std::string fallback) const;
  /// Positive integer (consumes the key); throws on 0/negative/garbage.
  std::int64_t int_or(const std::string& key, std::int64_t fallback) const;
  /// Value restricted to `allowed` (consumes the key).
  std::string enum_or(const std::string& key, std::initializer_list<std::string_view> allowed,
                      std::string fallback) const;

  /// Throws when any key was never consumed by a getter.
  void reject_unknown_keys() const;

  /// Uniform diagnostic: throws catt::Error("bad spec '<spec>': <why>").
  [[noreturn]] void fail(const std::string& why) const;

 private:
  std::string spec_;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> kvs_;  // insertion order
  mutable std::vector<bool> consumed_;
};

/// Scans argv for `--<flag>=SPEC` (last occurrence wins); falls back to
/// the environment variable `env` (when non-null), else returns "".
std::string flag_or_env(int argc, char** argv, std::string_view flag, const char* env);

}  // namespace catt::harness
