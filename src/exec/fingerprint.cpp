#include "exec/fingerprint.hpp"

#include "common/hash.hpp"
#include "ir/codegen.hpp"

namespace catt::exec {

std::uint64_t fingerprint(const ir::Kernel& k) {
  hash::Fnv1a h;
  h.str(k.name).i32(k.regs_per_thread);
  h.size(k.arrays.size());
  for (const auto& a : k.arrays) h.str(a.name).byte(static_cast<std::uint8_t>(a.type));
  h.size(k.scalars.size());
  for (const auto& s : k.scalars) h.str(s.name);
  h.size(k.shared.size());
  for (const auto& s : k.shared) {
    h.str(s.name).byte(static_cast<std::uint8_t>(s.type)).i64(s.count);
  }
  h.str(ir::to_cuda(k.body));
  return h.value();
}

std::uint64_t fingerprint(const arch::LaunchConfig& launch) {
  return hash::Fnv1a{}
      .u32(launch.grid.x)
      .u32(launch.grid.y)
      .u32(launch.grid.z)
      .u32(launch.block.x)
      .u32(launch.block.y)
      .u32(launch.block.z)
      .size(launch.dyn_shared_bytes)
      .value();
}

std::uint64_t fingerprint(const expr::ParamEnv& params) {
  hash::Fnv1a h;
  h.size(params.size());
  for (const auto& [name, value] : params) h.str(name).i64(value);
  return h.value();
}

}  // namespace catt::exec
