// Versioned cache-key builder for every content-addressed tier of the
// execution engine (the in-process SimCache, the on-disk cache, and the
// daemon's single-flight table).
//
// CacheKey replaces the former free exec::fingerprint() overloads with one
// builder type so every key is seeded the same way: an engine-version salt
// first, then the hashed fields in call order. The salt makes persisted
// entries self-invalidating — bumping kEngineVersion changes every key, so
// a disk cache written by an older timing engine can never serve a newer
// build (the disk tier additionally stores the version in each entry
// header and rejects mismatches, see disk_cache.hpp).
//
// The kernel fingerprint hashes the *canonical source text* (ir::to_cuda
// is a deterministic pretty-printer) plus the signature and resource
// fields codegen does not print into the body, so two transform pipelines
// that arrive at the same kernel — e.g. two fixed factors that clamp to
// the same per-kernel divisor — produce the same key.
#pragma once

#include <cstdint>
#include <string_view>

#include "arch/gpu_arch.hpp"
#include "arch/launch.hpp"
#include "common/hash.hpp"
#include "expr/affine.hpp"
#include "ir/ir.hpp"

namespace catt::sim {
struct SimOptions;
}

namespace catt::exec {

/// Version salt folded into every CacheKey (and stamped into every disk
/// entry header). Bump it whenever a change can alter simulated results —
/// timing-engine behaviour, stats fields, analysis decisions feeding
/// transformed kernels — so stale cached artifacts are never served.
inline constexpr std::uint32_t kEngineVersion = 8;

/// Streaming builder over hash::Fnv1a, pre-seeded with kEngineVersion.
/// Field order is significant; chain() folds a previous key in for the
/// SimCache's prefix-chained launch keys.
class CacheKey {
 public:
  CacheKey() { h_.u32(kEngineVersion); }

  /// Seeds from a previous key (order-sensitive: chaining is how run
  /// prefixes — arch, options, every preceding launch — stay part of
  /// each launch's identity; see sim_cache.hpp).
  CacheKey& chain(std::uint64_t prev) {
    h_.u64(prev);
    return *this;
  }

  CacheKey& kernel(const ir::Kernel& k);
  CacheKey& launch(const arch::LaunchConfig& l);
  CacheKey& params(const expr::ParamEnv& p);
  CacheKey& gpu_arch(const arch::GpuArch& a);
  CacheKey& sim_options(const sim::SimOptions& o);

  /// Raw fields, for workload identity, repeats, payload-kind salts, ...
  CacheKey& str(std::string_view s) {
    h_.str(s);
    return *this;
  }
  CacheKey& u64(std::uint64_t v) {
    h_.u64(v);
    return *this;
  }
  CacheKey& i32(std::int32_t v) {
    h_.i32(v);
    return *this;
  }
  CacheKey& b(bool v) {
    h_.b(v);
    return *this;
  }

  std::uint64_t value() const { return h_.value(); }

 private:
  hash::Fnv1a h_;
};

}  // namespace catt::exec
