// Single-flight execution: concurrent calls with the same key share one
// computation instead of racing to repeat it. The daemon uses this per
// request frame — ten clients asking for the same uncached sweep cost one
// simulation, not ten — but the helper is generic and deterministic, so
// sweep-level callers can use it too.
#pragma once

#include <condition_variable>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "obs/obs.hpp"

namespace catt::exec {

/// For each key, the first caller (the *leader*) runs `compute`; callers
/// that arrive while it is in flight (the *followers*) block and receive a
/// copy of the leader's result — or its exception, rethrown. Once a flight
/// lands the key is forgotten: a later call starts a fresh flight (caching
/// is the tiered caches' job, not this class's).
template <typename K, typename V>
class SingleFlight {
 public:
  template <typename Fn>
  V run(const K& key, Fn&& compute) {
    std::shared_ptr<Gate> gate;
    bool leader = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = inflight_.find(key);
      if (it == inflight_.end()) {
        gate = std::make_shared<Gate>();
        inflight_.emplace(key, gate);
        leader = true;
        ++leaders_;
      } else {
        gate = it->second;
        ++followers_;
      }
    }
    obs::count(leader ? "exec.singleflight.leaders" : "exec.singleflight.followers");

    if (leader) {
      try {
        V v = compute();
        std::lock_guard<std::mutex> g(gate->m);
        gate->value.emplace(std::move(v));
        gate->done = true;
      } catch (...) {
        std::lock_guard<std::mutex> g(gate->m);
        gate->error = std::current_exception();
        gate->done = true;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        inflight_.erase(key);
      }
      gate->cv.notify_all();
    }
    std::unique_lock<std::mutex> g(gate->m);
    gate->cv.wait(g, [&] { return gate->done; });
    if (gate->error != nullptr) std::rethrow_exception(gate->error);
    return *gate->value;
  }

  std::uint64_t leaders() const {
    std::lock_guard<std::mutex> lock(mu_);
    return leaders_;
  }
  std::uint64_t followers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return followers_;
  }

 private:
  struct Gate {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::optional<V> value;
    std::exception_ptr error;
  };

  mutable std::mutex mu_;
  std::map<K, std::shared_ptr<Gate>> inflight_;
  std::uint64_t leaders_ = 0;
  std::uint64_t followers_ = 0;
};

}  // namespace catt::exec
