// Content-addressed cache of per-launch simulation results.
//
// Keys are *chained*: entry i of an application run is keyed by
//
//   key_i = combine(key_{i-1},
//                   fingerprint(transformed kernel IR),
//                   fingerprint(launch), fingerprint(params), repeats)
//
// seeded with key_{-1} = combine(GpuArch::fingerprint(),
// SimOptions::fingerprint(), workload identity). The chain makes reuse
// sound despite cross-launch state (device memory writes and the L2, which
// persists across launches of a run): a cached entry is only ever returned
// for a run whose *entire prefix* — architecture, options, initial memory
// image, and every preceding transformed launch — is identical, and the
// simulator is deterministic, so the stats are bit-identical to
// re-simulating. See DESIGN.md, "Execution engine".
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "gpusim/gpu.hpp"

namespace catt::exec {

/// Thread-safe (internally locked) map from chained launch key to the
/// launch's aggregated stats. Counters: a *hit* is a launch assembled from
/// the cache instead of simulated; a *miss* is a launch that was simulated
/// (and inserted). hits() + misses() = launches requested through the cache.
class SimCache {
 public:
  std::optional<sim::KernelStats> lookup(std::uint64_t key);

  /// True if `key` is present. Does not touch the hit/miss counters (used
  /// to probe whether a whole run can be assembled before committing).
  bool contains(std::uint64_t key) const;

  void insert(std::uint64_t key, sim::KernelStats stats);

  /// Records that one launch was simulated rather than served (bumps the
  /// miss counter; insert() itself does not count).
  void count_miss();

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, sim::KernelStats> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace catt::exec
