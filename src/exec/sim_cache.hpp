// Content-addressed cache of per-launch simulation results.
//
// Keys are *chained*: entry i of an application run is keyed by
//
//   key_i = combine(key_{i-1},
//                   fingerprint(transformed kernel IR),
//                   fingerprint(launch), fingerprint(params), repeats)
//
// seeded with key_{-1} = combine(GpuArch::fingerprint(),
// SimOptions::fingerprint(), workload identity). The chain makes reuse
// sound despite cross-launch state (device memory writes and the L2, which
// persists across launches of a run): a cached entry is only ever returned
// for a run whose *entire prefix* — architecture, options, initial memory
// image, and every preceding transformed launch — is identical, and the
// simulator is deterministic, so the stats are bit-identical to
// re-simulating. See DESIGN.md, "Execution engine".
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gpusim/gpu.hpp"

namespace catt::exec {

/// Thread-safe (internally locked) map from chained launch key to the
/// launch's aggregated stats. Counters: a *hit* is a launch assembled from
/// the cache instead of simulated; a *miss* is a launch that was simulated
/// (and inserted). hits() + misses() = launches requested through the cache.
class SimCache {
 public:
  /// Pulls a missing entry from a lower tier (the disk cache). Returning
  /// nullopt means the tier does not have it either.
  using FetchFn = std::function<std::optional<sim::KernelStats>(std::uint64_t)>;

  std::optional<sim::KernelStats> lookup(std::uint64_t key);

  /// True if `key` is present. Does not touch the hit/miss counters.
  bool contains(std::uint64_t key) const;

  void insert(std::uint64_t key, sim::KernelStats stats);

  /// Atomically resolves a whole run: returns the stats for every key, in
  /// order, iff *all* keys resolve — from this cache or, for keys not in
  /// memory, from `fetch` (resolved entries are promoted into memory).
  /// All-or-nothing replaces the old probe-then-lookup / count_miss()
  /// two-step, whose separate critical sections could double-count a
  /// launch raced by a concurrent inserter. Counters move once per call:
  /// success charges keys.size() hits, failure keys.size() misses (the
  /// caller will simulate the whole run).
  std::optional<std::vector<sim::KernelStats>> lookup_run(
      const std::vector<std::uint64_t>& keys, const FetchFn& fetch = {});

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, sim::KernelStats> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace catt::exec
