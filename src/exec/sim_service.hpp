// SimService: the stats_for half of the plan/sim API split. It answers
// "what are the stats for this chained cache key" through a two-tier
// cache — the in-process SimCache as L1, the shared on-disk DiskCache as
// L2 — and it is where simulated results get published to both tiers.
//
// The service never simulates. Key derivation and simulation stay with the
// caller (throttle::Runner builds plans and runs the timing engine); the
// service's contract is purely content-addressed: assemble(keys) either
// returns the complete run from cache or reports that the caller must
// simulate, and publish() makes a simulated launch visible to every
// process sharing the disk tier.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "exec/disk_cache.hpp"
#include "exec/sim_cache.hpp"

namespace catt::exec {

class SimService {
 public:
  /// Serves from `l1`; `disk` is the optional shared persistent tier
  /// (null = in-memory only, the pre-daemon behaviour).
  explicit SimService(SimCache& l1, DiskCache* disk = nullptr) : l1_(&l1), disk_(disk) {}

  /// One launch's stats if cached in either tier; never computes. Disk
  /// hits are promoted into L1.
  std::optional<sim::KernelStats> stats_for(std::uint64_t key);

  /// A whole run, iff *every* chained key resolves from L1 or disk
  /// (atomic hit/miss accounting — see SimCache::lookup_run). nullopt
  /// means the caller must simulate the run and publish() each launch.
  std::optional<std::vector<sim::KernelStats>> assemble(const std::vector<std::uint64_t>& keys);

  /// Records one simulated launch in L1 and, when attached, on disk.
  void publish(std::uint64_t key, const sim::KernelStats& stats);

  SimCache& l1() { return *l1_; }
  DiskCache* disk() const { return disk_; }
  void set_disk(DiskCache* disk) { disk_ = disk; }

 private:
  SimCache* l1_;
  DiskCache* disk_;
};

}  // namespace catt::exec
