#include "exec/sim_cache.hpp"

#include "obs/obs.hpp"

namespace catt::exec {

// The internal hit/miss counters are mirrored into the obs registry
// (exec.simcache.*) with identical semantics. Reads of hits()/misses()
// stay on the internal counters so cache-asserting tests are independent
// of obs configuration.

std::optional<sim::KernelStats> SimCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    obs::count("exec.simcache.misses");
    return std::nullopt;
  }
  ++hits_;
  obs::count("exec.simcache.hits");
  return it->second;
}

bool SimCache::contains(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.contains(key);
}

std::optional<std::vector<sim::KernelStats>> SimCache::lookup_run(
    const std::vector<std::uint64_t>& keys, const FetchFn& fetch) {
  std::lock_guard<std::mutex> lock(mu_);
  // Holding the lock across the fetch keeps resolve-or-simulate decisions
  // atomic with respect to concurrent runs; the lower tier has its own
  // lock and never calls back up, so there is no ordering cycle.
  std::vector<sim::KernelStats> out;
  out.reserve(keys.size());
  bool complete = true;
  for (const std::uint64_t key : keys) {
    auto it = map_.find(key);
    if (it == map_.end() && fetch) {
      if (auto fetched = fetch(key); fetched.has_value()) {
        it = map_.insert_or_assign(key, std::move(*fetched)).first;
      }
    }
    if (it == map_.end()) {
      complete = false;
      break;
    }
    out.push_back(it->second);
  }
  if (!complete) {
    misses_ += keys.size();
    obs::count("exec.simcache.misses", keys.size());
    return std::nullopt;
  }
  hits_ += keys.size();
  obs::count("exec.simcache.hits", keys.size());
  return out;
}

void SimCache::insert(std::uint64_t key, sim::KernelStats stats) {
  std::lock_guard<std::mutex> lock(mu_);
  map_.insert_or_assign(key, std::move(stats));
}

std::uint64_t SimCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t SimCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t SimCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void SimCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace catt::exec
