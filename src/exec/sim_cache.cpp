#include "exec/sim_cache.hpp"

#include "obs/obs.hpp"

namespace catt::exec {
namespace {

/// Mirrors the cache's internal hit/miss counters into the obs registry,
/// with identical semantics (lookup hit/miss, count_miss). Reads of
/// hits()/misses() stay on the internal counters so cache-asserting tests
/// are independent of obs configuration.
void note_cache_event(const char* counter) {
  if (const obs::SimObs* ob = obs::resolve(nullptr)) {
    obs::Registry& reg = ob->registry_or_global();
    reg.add(reg.counter(counter), 1);
  }
}

}  // namespace

std::optional<sim::KernelStats> SimCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    note_cache_event("exec.simcache.misses");
    return std::nullopt;
  }
  ++hits_;
  note_cache_event("exec.simcache.hits");
  return it->second;
}

bool SimCache::contains(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.contains(key);
}

void SimCache::count_miss() {
  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  note_cache_event("exec.simcache.misses");
}

void SimCache::insert(std::uint64_t key, sim::KernelStats stats) {
  std::lock_guard<std::mutex> lock(mu_);
  map_.insert_or_assign(key, std::move(stats));
}

std::uint64_t SimCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t SimCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t SimCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void SimCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace catt::exec
