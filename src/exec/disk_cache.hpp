// Disk-backed, content-addressed cache of execution-engine artifacts
// (KernelStats payloads for the SimService, ThrottlePlan payloads for the
// PlanService). This is the persistent tier behind the in-process SimCache:
// many bench/sweep processes — and the catt_serve daemon — point at one
// directory and share every simulation ever run for a given engine version.
//
// Layout: <dir>/<first-2-hex>/<16-hex-key>-<kind>.ce, one entry per file.
// Each file is a fixed header (magic, format version, engine-version salt,
// key, payload kind/size/checksum) followed by the wire-encoded payload.
//
// Correctness under concurrent writers: entries are written to a unique
// temp file in the same directory and published with rename(2), which is
// atomic on POSIX — a reader sees either no entry or a complete one, never
// a partial write. Two processes publishing the same key race benignly:
// keys are content-addressed and the engine is deterministic, so both
// bodies are byte-identical and the losing rename simply overwrites an
// equal file.
//
// Reads mmap the entry read-only, validate the header + an FNV-1a payload
// checksum, and copy the payload out. Any mismatch — truncation, garbage,
// a foreign engine version, a key collision — counts as a miss, drops the
// file, and lets the caller recompute: corruption can cost time, never
// wrong results.
//
// Eviction (evict=lru): on insert overflow the directory is rescanned and
// the oldest entries by mtime are dropped until the cache fits under
// max_bytes again; hits re-touch their entry's mtime so hot entries
// survive. evict=none never deletes (max_bytes still bounds *this
// process's* inserts by refusing them).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "catt/analysis.hpp"
#include "exec/cache_key.hpp"
#include "gpusim/gpu.hpp"

namespace catt::exec {

/// What an entry's payload decodes to; part of the on-disk name and header
/// so the two services can never deserialize each other's artifacts.
enum class PayloadKind : std::uint8_t {
  kKernelStats = 1,
  kThrottlePlan = 2,
};

struct DiskCacheConfig {
  std::string dir;
  /// Total payload+header bytes before eviction kicks in (0 = unbounded).
  std::uint64_t max_bytes = 0;
  enum class Evict : std::uint8_t { kNone, kLru };
  Evict evict = Evict::kLru;
  /// Entries stamped with a different version are invalid (self-invalidation
  /// on timing-engine changes). Overridable for tests only.
  std::uint32_t engine_version = kEngineVersion;
  /// fsync entries before publish (crash durability; off for benches).
  bool fsync = false;
};

class DiskCache {
 public:
  /// Creates the directory if needed and sizes the cache by scanning it.
  /// Throws catt::SimError when the directory cannot be created.
  explicit DiskCache(DiskCacheConfig cfg);

  // Raw payload interface (used by the services and the daemon).
  std::optional<std::string> get(std::uint64_t key, PayloadKind kind);
  /// Publishes; returns false when the entry could not be written (IO
  /// error, or evict=none and the cache is full). Never throws.
  bool put(std::uint64_t key, PayloadKind kind, std::string_view payload);

  // Typed helpers over the wire codecs.
  std::optional<sim::KernelStats> get_stats(std::uint64_t key);
  bool put_stats(std::uint64_t key, const sim::KernelStats& s);
  std::optional<analysis::ThrottlePlan> get_plan(std::uint64_t key);
  bool put_plan(std::uint64_t key, const analysis::ThrottlePlan& p);

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writes = 0;      // entries published by this instance
    std::uint64_t dup_writes = 0;  // puts that found the entry already on disk
    std::uint64_t evictions = 0;   // entries removed to fit max_bytes
    std::uint64_t dropped = 0;     // corrupt/truncated/version-skewed entries removed
  };
  Counters counters() const;

  /// Total on-disk bytes as tracked by this instance (rescan-corrected
  /// whenever eviction runs).
  std::uint64_t size_bytes() const;

  const DiskCacheConfig& config() const { return cfg_; }

 private:
  std::string entry_path(std::uint64_t key, PayloadKind kind) const;
  void drop_entry_locked(const std::string& path);
  void evict_to_fit_locked(std::uint64_t incoming_bytes);
  std::uint64_t scan_locked();

  DiskCacheConfig cfg_;
  mutable std::mutex mu_;
  std::uint64_t size_bytes_ = 0;
  Counters counters_;
  std::uint64_t tmp_seq_ = 0;
};

}  // namespace catt::exec
