// Disk-backed, content-addressed cache of execution-engine artifacts
// (KernelStats payloads for the SimService, ThrottlePlan payloads for the
// PlanService). This is the persistent tier behind the in-process SimCache:
// many bench/sweep processes — and the catt_serve daemon — point at one
// directory and share every simulation ever run for a given engine version.
//
// Layout: <dir>/<first-2-hex>/<16-hex-key>-<kind>.ce, one entry per file.
// Each file is a fixed header (magic, format version, engine-version salt,
// key, payload kind/size/checksum) followed by the wire-encoded payload.
//
// Correctness under concurrent writers: entries are written to a unique
// temp file in the same directory and published with rename(2), which is
// atomic on POSIX — a reader sees either no entry or a complete one, never
// a partial write. Two processes publishing the same key race benignly:
// keys are content-addressed and the engine is deterministic, so both
// bodies are byte-identical and the losing rename simply overwrites an
// equal file.
//
// Reads mmap the entry read-only, validate the header + an FNV-1a payload
// checksum, and copy the payload out. Any mismatch — truncation, garbage,
// a foreign engine version, a key collision — counts as a miss, drops the
// file, and lets the caller recompute: corruption can cost time, never
// wrong results.
//
// Eviction (evict=lru): the instance keeps an in-process size/mtime index
// of every entry, built by scanning the directory once on first use (first
// bounded put or size_bytes() query — construction is free even over a
// huge directory) and updated on publish/hit/drop from then on; insert
// overflow sorts the index, never the filesystem, and drops the oldest
// entries by mtime until the cache fits under max_bytes again. Hits
// re-touch their entry's mtime (on disk and in the index) so hot entries
// survive. Entries published by *other* processes after the scan are
// invisible to this instance's eviction accounting — the tradeoff for not
// rescanning on every overflow; the "exec.diskcache.rescans" counter
// (Counters::rescans) proves the scan happens once. evict=none never
// deletes (max_bytes still bounds *this process's* inserts by refusing
// them).
#pragma once

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "catt/analysis.hpp"
#include "exec/cache_key.hpp"
#include "gpusim/gpu.hpp"

namespace catt::exec {

/// What an entry's payload decodes to; part of the on-disk name and header
/// so the two services can never deserialize each other's artifacts.
enum class PayloadKind : std::uint8_t {
  kKernelStats = 1,
  kThrottlePlan = 2,
};

struct DiskCacheConfig {
  std::string dir;
  /// Total payload+header bytes before eviction kicks in (0 = unbounded).
  std::uint64_t max_bytes = 0;
  enum class Evict : std::uint8_t { kNone, kLru };
  Evict evict = Evict::kLru;
  /// Entries stamped with a different version are invalid (self-invalidation
  /// on timing-engine changes). Overridable for tests only.
  std::uint32_t engine_version = kEngineVersion;
  /// fsync entries before publish (crash durability; off for benches).
  bool fsync = false;
};

class DiskCache {
 public:
  /// Creates the directory if needed and sizes the cache by scanning it.
  /// Throws catt::SimError when the directory cannot be created.
  explicit DiskCache(DiskCacheConfig cfg);

  // Raw payload interface (used by the services and the daemon).
  std::optional<std::string> get(std::uint64_t key, PayloadKind kind);
  /// Publishes; returns false when the entry could not be written (IO
  /// error, or evict=none and the cache is full). Never throws.
  bool put(std::uint64_t key, PayloadKind kind, std::string_view payload);

  // Typed helpers over the wire codecs.
  std::optional<sim::KernelStats> get_stats(std::uint64_t key);
  bool put_stats(std::uint64_t key, const sim::KernelStats& s);
  std::optional<analysis::ThrottlePlan> get_plan(std::uint64_t key);
  bool put_plan(std::uint64_t key, const analysis::ThrottlePlan& p);

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writes = 0;      // entries published by this instance
    std::uint64_t dup_writes = 0;  // puts that found the entry already on disk
    std::uint64_t evictions = 0;   // entries removed to fit max_bytes
    std::uint64_t dropped = 0;     // corrupt/truncated/version-skewed entries removed
    std::uint64_t rescans = 0;     // full directory scans (at most 1: first use)
  };
  Counters counters() const;

  /// Total on-disk bytes as tracked by this instance's index (builds the
  /// index on first call).
  std::uint64_t size_bytes();

  const DiskCacheConfig& config() const { return cfg_; }

 private:
  std::string entry_path(std::uint64_t key, PayloadKind kind) const;
  void drop_entry_locked(const std::string& path);
  void evict_to_fit_locked(std::uint64_t incoming_bytes);
  /// Builds the size/mtime index by scanning the directory; a no-op after
  /// the first call, so opening a cache over a large directory costs
  /// nothing until something actually needs the totals.
  void ensure_index_locked();
  /// Records `path` in the index, stat-ing the file when `size` is 0 (an
  /// entry discovered rather than written). No-op before the first scan.
  void index_add_locked(const std::string& path, std::uint64_t size);

  struct IndexEntry {
    std::uint64_t size = 0;
    std::filesystem::file_time_type mtime;
  };

  DiskCacheConfig cfg_;
  mutable std::mutex mu_;
  std::uint64_t size_bytes_ = 0;
  bool indexed_ = false;
  std::unordered_map<std::string, IndexEntry> index_;
  Counters counters_;
  std::uint64_t tmp_seq_ = 0;
};

}  // namespace catt::exec
