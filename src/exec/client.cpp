#include "exec/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "common/error.hpp"
#include "exec/cache_key.hpp"
#include "exec/wire.hpp"

namespace catt::exec {
namespace rpc {
namespace {

void write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w <= 0) throw SimError("rpc: connection write failed");
    off += static_cast<std::size_t>(w);
  }
}

void read_all(int fd, char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, data + off, n - off);
    if (r <= 0) throw SimError("rpc: connection closed mid-frame");
    off += static_cast<std::size_t>(r);
  }
}

}  // namespace

void send_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) throw SimError("rpc: frame too large to send");
  wire::Writer w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  write_all(fd, w.buffer().data(), w.buffer().size());
  write_all(fd, payload.data(), payload.size());
}

std::string recv_frame(int fd) {
  char len_bytes[4];
  read_all(fd, len_bytes, sizeof(len_bytes));
  wire::Reader r(std::string_view(len_bytes, sizeof(len_bytes)));
  const std::uint32_t len = r.u32();
  if (len > kMaxFrameBytes) {
    throw SimError("rpc: oversized frame (" + std::to_string(len) + " bytes)");
  }
  std::string payload(len, '\0');
  read_all(fd, payload.data(), payload.size());
  return payload;
}

}  // namespace rpc

Client::Client(std::string socket_path) : path_(std::move(socket_path)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    throw SimError("rpc: socket path too long: " + path_);
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw SimError("rpc: cannot create socket");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw SimError("rpc: cannot connect to " + path_ + " (is catt_serve running?)");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::call(std::uint8_t op, std::string_view body) {
  std::lock_guard<std::mutex> lock(mu_);
  wire::Writer req;
  req.u8(op);
  std::string payload = req.take();
  payload.append(body.data(), body.size());
  rpc::send_frame(fd_, payload);

  const std::string resp = rpc::recv_frame(fd_);
  wire::Reader r(resp);
  const std::uint8_t status = r.u8();
  std::string rest(resp.substr(1));
  if (status != rpc::kStatusOk) {
    throw SimError("rpc: server error: " + rest);
  }
  return rest;
}

bool Client::ping() {
  try {
    const std::string body = call(rpc::kOpPing);
    wire::Reader r(body);
    const std::uint32_t version = r.u32();
    r.expect_done("ping response");
    return version == kEngineVersion;
  } catch (const SimError&) {
    return false;
  }
}

std::optional<sim::KernelStats> Client::stats_for(std::uint64_t key) {
  wire::Writer req;
  req.u64(key);
  const std::string body = call(rpc::kOpStats, req.buffer());
  wire::Reader r(body);
  if (!r.b()) {
    r.expect_done("stats response");
    return std::nullopt;
  }
  sim::KernelStats s = wire::decode_kernel_stats(r);
  r.expect_done("stats response");
  return s;
}

void Client::shutdown_server() { call(rpc::kOpShutdown); }

}  // namespace catt::exec
