#include "exec/wire.hpp"

#include <bit>

#include "common/error.hpp"

namespace catt::exec::wire {

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(std::string_view s) {
  u64(s.size());
  out_.append(s.data(), s.size());
}

void Reader::need(std::size_t n, const char* what) const {
  if (in_.size() - pos_ < n) {
    throw SimError(std::string("wire: truncated input reading ") + what);
  }
}

std::uint8_t Reader::u8() {
  need(1, "u8");
  return static_cast<std::uint8_t>(in_[pos_++]);
}

std::uint32_t Reader::u32() {
  need(4, "u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(in_[pos_++])) << (8 * i);
  return v;
}

std::uint64_t Reader::u64() {
  need(8, "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in_[pos_++])) << (8 * i);
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint64_t n = u64();
  need(n, "string body");
  std::string s(in_.substr(pos_, n));
  pos_ += n;
  return s;
}

void Reader::expect_done(const char* what) const {
  if (!done()) {
    throw SimError(std::string("wire: ") + what + ": " + std::to_string(remaining()) +
                   " trailing bytes");
  }
}

void encode(Writer& w, const occupancy::Occupancy& o) {
  w.i32(o.tbs_per_sm);
  w.i32(o.warps_per_tb);
  w.i32(o.warps_per_sm);
  w.u8(static_cast<std::uint8_t>(o.limiter));
  w.u64(o.shm_use_per_sm);
  w.u64(o.shm_carveout);
  w.u64(o.l1d_bytes);
}

occupancy::Occupancy decode_occupancy(Reader& r) {
  occupancy::Occupancy o;
  o.tbs_per_sm = r.i32();
  o.warps_per_tb = r.i32();
  o.warps_per_sm = r.i32();
  o.limiter = static_cast<occupancy::Limiter>(r.u8());
  o.shm_use_per_sm = r.u64();
  o.shm_carveout = r.u64();
  o.l1d_bytes = r.u64();
  return o;
}

namespace {

void encode_cache_stats(Writer& w, const sim::CacheStats& c) {
  w.u64(c.accesses);
  w.u64(c.hits);
  w.u64(c.misses);
  w.u64(c.store_accesses);
}

sim::CacheStats decode_cache_stats(Reader& r) {
  sim::CacheStats c;
  c.accesses = r.u64();
  c.hits = r.u64();
  c.misses = r.u64();
  c.store_accesses = r.u64();
  return c;
}

}  // namespace

void encode(Writer& w, const sim::KernelStats& s) {
  w.str(s.kernel_name);
  w.i64(s.cycles);
  encode_cache_stats(w, s.l1);
  encode_cache_stats(w, s.l2);
  w.u64(s.dram_lines);
  w.u64(s.warp_insts);
  w.u64(s.mem_insts);
  w.u64(s.mem_requests);
  w.u64(s.lane_cycles);
  w.u64(s.lane_mem_insts);
  w.u64(s.div.branches);
  w.u64(s.div.divergent_branches);
  w.u64(s.div.reconvergences);
  w.u32(s.div.max_depth);
  w.u64(s.sm_steps);
  w.u64(s.warps_scanned);
  w.u64(s.queue_pops);
  w.u64(s.sched_vetoes);
  w.u64(s.sched_victim_tag_hits);
  w.u64(s.sched_updates);
  w.i32(s.sched_throttle_level);
  w.i32(s.sched_paused_tbs);
  w.i32(s.sched_max_paused_tbs);
  encode(w, s.occ);
  w.u64(s.request_trace.size());
  for (const auto& p : s.request_trace) {
    w.u64(p.index);
    w.f64(p.mean);
  }
  w.u64(s.sched_decisions.size());
  for (const auto& d : s.sched_decisions) {
    w.i64(d.cycle);
    w.i32(d.sm);
    w.i32(d.phase);
    w.i32(d.from_level);
    w.i32(d.to_level);
    w.u8(static_cast<std::uint8_t>(d.reason));
  }
}

sim::KernelStats decode_kernel_stats(Reader& r) {
  sim::KernelStats s;
  s.kernel_name = r.str();
  s.cycles = r.i64();
  s.l1 = decode_cache_stats(r);
  s.l2 = decode_cache_stats(r);
  s.dram_lines = r.u64();
  s.warp_insts = r.u64();
  s.mem_insts = r.u64();
  s.mem_requests = r.u64();
  s.lane_cycles = r.u64();
  s.lane_mem_insts = r.u64();
  s.div.branches = r.u64();
  s.div.divergent_branches = r.u64();
  s.div.reconvergences = r.u64();
  s.div.max_depth = r.u32();
  s.sm_steps = r.u64();
  s.warps_scanned = r.u64();
  s.queue_pops = r.u64();
  s.sched_vetoes = r.u64();
  s.sched_victim_tag_hits = r.u64();
  s.sched_updates = r.u64();
  s.sched_throttle_level = r.i32();
  s.sched_paused_tbs = r.i32();
  s.sched_max_paused_tbs = r.i32();
  s.occ = decode_occupancy(r);
  const std::uint64_t n = r.u64();
  s.request_trace.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    sim::SeriesAccum::Point p;
    p.index = r.u64();
    p.mean = r.f64();
    s.request_trace.push_back(p);
  }
  const std::uint64_t n_dec = r.u64();
  s.sched_decisions.reserve(n_dec);
  for (std::uint64_t i = 0; i < n_dec; ++i) {
    sim::sched::Decision d;
    d.cycle = r.i64();
    d.sm = r.i32();
    d.phase = r.i32();
    d.from_level = r.i32();
    d.to_level = r.i32();
    d.reason = static_cast<sim::sched::DecisionReason>(r.u8());
    s.sched_decisions.push_back(d);
  }
  return s;
}

void encode(Writer& w, const analysis::ThrottlePlan& p) {
  w.u64(p.warp_throttles.size());
  for (const auto& t : p.warp_throttles) {
    w.i32(t.loop_id);
    w.i32(t.n_divisor);
  }
  w.i32(p.tb_limit);
}

analysis::ThrottlePlan decode_throttle_plan(Reader& r) {
  analysis::ThrottlePlan p;
  const std::uint64_t n = r.u64();
  p.warp_throttles.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    analysis::ThrottlePlan::LoopThrottle t;
    t.loop_id = r.i32();
    t.n_divisor = r.i32();
    p.warp_throttles.push_back(t);
  }
  p.tb_limit = r.i32();
  return p;
}

std::string encode_kernel_stats(const sim::KernelStats& s) {
  Writer w;
  encode(w, s);
  return w.take();
}

sim::KernelStats decode_kernel_stats(std::string_view buf) {
  Reader r(buf);
  sim::KernelStats s = decode_kernel_stats(r);
  r.expect_done("KernelStats");
  return s;
}

std::string encode_throttle_plan(const analysis::ThrottlePlan& p) {
  Writer w;
  encode(w, p);
  return w.take();
}

analysis::ThrottlePlan decode_throttle_plan(std::string_view buf) {
  Reader r(buf);
  analysis::ThrottlePlan p = decode_throttle_plan(r);
  r.expect_done("ThrottlePlan");
  return p;
}

}  // namespace catt::exec::wire
