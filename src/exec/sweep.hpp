// Fan-out of candidate configurations across a Pool with deterministic,
// order-independent collection: every result is keyed by its candidate
// index, so the output of a parallel sweep is bit-identical to running the
// candidates serially — scheduling order can never reorder or drop results.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "exec/pool.hpp"

namespace catt::exec {

class SweepEngine {
 public:
  explicit SweepEngine(Pool& pool) : pool_(pool) {}

  /// Runs fn(0) .. fn(n-1) across the pool and blocks until all complete.
  /// If any invocation throws, the exception of the *lowest* index is
  /// rethrown after every job has finished (deterministic error reporting
  /// regardless of thread interleaving).
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// for_each that collects fn's return values into a vector indexed by
  /// candidate. T must be default-constructible.
  template <typename T>
  std::vector<T> map(std::size_t n, const std::function<T(std::size_t)>& fn) {
    std::vector<T> out(n);
    for_each(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  Pool& pool_;
};

}  // namespace catt::exec
