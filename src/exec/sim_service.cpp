#include "exec/sim_service.hpp"

namespace catt::exec {

std::optional<sim::KernelStats> SimService::stats_for(std::uint64_t key) {
  const std::vector<std::uint64_t> keys{key};
  auto run = l1_->lookup_run(keys, [this](std::uint64_t k) {
    return disk_ != nullptr ? disk_->get_stats(k) : std::optional<sim::KernelStats>{};
  });
  if (!run.has_value()) return std::nullopt;
  return std::move(run->front());
}

std::optional<std::vector<sim::KernelStats>> SimService::assemble(
    const std::vector<std::uint64_t>& keys) {
  return l1_->lookup_run(keys, [this](std::uint64_t k) {
    return disk_ != nullptr ? disk_->get_stats(k) : std::optional<sim::KernelStats>{};
  });
}

void SimService::publish(std::uint64_t key, const sim::KernelStats& stats) {
  l1_->insert(key, stats);
  if (disk_ != nullptr) disk_->put_stats(key, stats);
}

}  // namespace catt::exec
