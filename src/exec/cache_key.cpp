#include "exec/cache_key.hpp"

#include "gpusim/gpu.hpp"
#include "ir/codegen.hpp"

namespace catt::exec {

CacheKey& CacheKey::kernel(const ir::Kernel& k) {
  h_.str(k.name).i32(k.regs_per_thread);
  h_.size(k.arrays.size());
  for (const auto& a : k.arrays) h_.str(a.name).byte(static_cast<std::uint8_t>(a.type));
  h_.size(k.scalars.size());
  for (const auto& s : k.scalars) h_.str(s.name);
  h_.size(k.shared.size());
  for (const auto& s : k.shared) {
    h_.str(s.name).byte(static_cast<std::uint8_t>(s.type)).i64(s.count);
  }
  h_.str(ir::to_cuda(k.body));
  return *this;
}

CacheKey& CacheKey::launch(const arch::LaunchConfig& l) {
  h_.u32(l.grid.x)
      .u32(l.grid.y)
      .u32(l.grid.z)
      .u32(l.block.x)
      .u32(l.block.y)
      .u32(l.block.z)
      .size(l.dyn_shared_bytes);
  return *this;
}

CacheKey& CacheKey::params(const expr::ParamEnv& p) {
  h_.size(p.size());
  for (const auto& [name, value] : p) h_.str(name).i64(value);
  return *this;
}

CacheKey& CacheKey::gpu_arch(const arch::GpuArch& a) {
  h_.u64(a.fingerprint());
  return *this;
}

CacheKey& CacheKey::sim_options(const sim::SimOptions& o) {
  h_.u64(o.fingerprint());
  return *this;
}

}  // namespace catt::exec
