// Bounded worker-thread pool for the experiment engine. Deliberately not
// work-stealing: jobs are coarse (one whole application simulation each),
// so a single locked FIFO is contention-free in practice and keeps the
// dispatch order deterministic.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace catt::exec {

class Pool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit Pool(int threads = default_jobs());

  /// Drains nothing: outstanding jobs finish, queued jobs still run; the
  /// destructor joins after the queue empties.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Enqueues one job. Jobs must not submit to the same pool (coarse
  /// experiment jobs never need to; nesting would deadlock a full pool).
  void submit(std::function<void()> job);

  int size() const { return static_cast<int>(workers_.size()); }

  /// Worker count used when none is given: the CATT_JOBS environment
  /// variable if set to a positive integer, else hardware_concurrency —
  /// divided by the per-launch sim-thread width (CATT_SIM_THREADS) so
  /// the two layers share one core budget instead of multiplying.
  static int default_jobs();

  /// Process-wide pool shared by all Runners that are not handed one.
  static Pool& shared();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace catt::exec
