// Cache-key fingerprints for the pieces of a simulation a SimCache entry
// depends on. The kernel fingerprint hashes the *canonical source text*
// (ir::to_cuda is a deterministic pretty-printer) plus the signature and
// resource fields codegen does not print into the body, so two transform
// pipelines that arrive at the same kernel — e.g. two fixed factors that
// clamp to the same per-kernel divisor — produce the same key.
#pragma once

#include <cstdint>

#include "arch/launch.hpp"
#include "expr/affine.hpp"
#include "ir/ir.hpp"

namespace catt::exec {

std::uint64_t fingerprint(const ir::Kernel& k);
std::uint64_t fingerprint(const arch::LaunchConfig& launch);
std::uint64_t fingerprint(const expr::ParamEnv& params);

}  // namespace catt::exec
