// Binary serialization shared by the disk cache and the daemon protocol.
//
// Encoding rules: all integers little-endian and fixed-width, strings and
// vectors length-prefixed (u64 count), doubles bit_cast to u64. Every
// value is written field by field — never memcpy of a struct — so the
// format is independent of padding, endianness of the host, and compiler.
// Decoders validate bounds on every read and throw catt::SimError on
// malformed input; a truncated or bit-flipped disk entry or wire frame is
// reported, never silently misread.
//
// The codecs here cover the payload types the services exchange:
// sim::KernelStats (the SimService artifact) and analysis::ThrottlePlan
// (the PlanService artifact). AppResult — the throttle-layer aggregate —
// is encoded in throttle/remote.cpp on top of these primitives.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "catt/analysis.hpp"
#include "gpusim/gpu.hpp"

namespace catt::exec::wire {

/// Append-only encoder. Cheap to pass around; the buffer is the result.
class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v);
  void str(std::string_view s);

  const std::string& buffer() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked decoder over a borrowed buffer.
class Reader {
 public:
  explicit Reader(std::string_view in) : in_(in) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool b() { return u8() != 0; }
  double f64();
  std::string str();

  std::size_t remaining() const { return in_.size() - pos_; }
  bool done() const { return pos_ == in_.size(); }
  /// Throws SimError unless the whole buffer was consumed (catches both
  /// trailing garbage and version-skewed encoders).
  void expect_done(const char* what) const;

 private:
  void need(std::size_t n, const char* what) const;

  std::string_view in_;
  std::size_t pos_ = 0;
};

// --- payload codecs ---

void encode(Writer& w, const occupancy::Occupancy& o);
occupancy::Occupancy decode_occupancy(Reader& r);

void encode(Writer& w, const sim::KernelStats& s);
sim::KernelStats decode_kernel_stats(Reader& r);

void encode(Writer& w, const analysis::ThrottlePlan& p);
analysis::ThrottlePlan decode_throttle_plan(Reader& r);

/// Convenience: one payload per buffer.
std::string encode_kernel_stats(const sim::KernelStats& s);
sim::KernelStats decode_kernel_stats(std::string_view buf);
std::string encode_throttle_plan(const analysis::ThrottlePlan& p);
analysis::ThrottlePlan decode_throttle_plan(std::string_view buf);

}  // namespace catt::exec::wire
