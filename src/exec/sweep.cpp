#include "exec/sweep.hpp"

#include <condition_variable>
#include <exception>
#include <mutex>

namespace catt::exec {

void SweepEngine::for_each(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t remaining = n;
  std::vector<std::exception_ptr> errors(n);

  for (std::size_t i = 0; i < n; ++i) {
    pool_.submit([&, i] {
      std::exception_ptr err;
      try {
        fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      errors[i] = err;
      if (--remaining == 0) done_cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

}  // namespace catt::exec
