#include "exec/sweep.hpp"

#include <condition_variable>
#include <exception>
#include <mutex>

#include "obs/obs.hpp"

namespace catt::exec {

void SweepEngine::for_each(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  obs::Tracer* tr = nullptr;
  std::int64_t t0 = 0;
  if (const obs::SimObs* ob = obs::resolve(nullptr)) {
    obs::Registry& reg = ob->registry_or_global();
    reg.add(reg.counter("exec.sweeps"), 1);
    reg.add(reg.counter("exec.sweep.items"), static_cast<std::uint64_t>(n));
    if (ob->trace_level >= 1) {
      tr = &ob->tracer_or_global();
      t0 = tr->host_now_us();
    }
  }

  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t remaining = n;
  std::vector<std::exception_ptr> errors(n);

  for (std::size_t i = 0; i < n; ++i) {
    pool_.submit([&, i] {
      std::exception_ptr err;
      try {
        fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      errors[i] = err;
      if (--remaining == 0) done_cv.notify_all();
    });
  }

  {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  if (tr != nullptr) {
    tr->record(obs::TraceEvent{tr->intern("sweep"), tr->intern("items"),
                               obs::Phase::kComplete, 0, tr->host_tid(), t0,
                               tr->host_now_us() - t0, static_cast<std::int64_t>(n)});
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

}  // namespace catt::exec
