// PlanService: the plan_for half of the plan/sim API split. It answers
// "what throttle plan does CATT pick for this kernel launch" from static
// analysis alone — occupancy and footprint estimation — and by contract
// never invokes the timing engine (service_test pins this with the
// sim.gpu.launches obs counter).
//
// Results are memoized in two tiers: full KernelAnalysis objects in
// memory (they carry per-loop/per-access detail that is not serialized),
// and the ThrottlePlan artifact — all a transform needs — in the shared
// DiskCache under a CacheKey that covers the architecture, the kernel IR,
// the launch geometry, the parameter bindings, and every AnalysisOptions
// knob, salted with "plan" so plan keys can never collide with launch
// stats keys.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "arch/gpu_arch.hpp"
#include "arch/launch.hpp"
#include "catt/analysis.hpp"
#include "exec/disk_cache.hpp"

namespace catt::exec {

class PlanService {
 public:
  explicit PlanService(arch::GpuArch gpu_arch, DiskCache* disk = nullptr)
      : arch_(std::move(gpu_arch)), disk_(disk) {}

  /// Content-addressed identity of one plan query.
  std::uint64_t plan_key(const ir::Kernel& kernel, const arch::LaunchConfig& launch,
                         const expr::ParamEnv& params,
                         const analysis::AnalysisOptions& opts = {}) const;

  /// The throttle plan for one kernel launch: memory, then disk, then
  /// compute-and-publish. Never runs a simulation.
  analysis::ThrottlePlan plan_for(const ir::Kernel& kernel, const arch::LaunchConfig& launch,
                                  const expr::ParamEnv& params,
                                  const analysis::AnalysisOptions& opts = {});

  /// The full analysis (per-loop decisions, occupancy, footprints) for
  /// callers that need more than the plan. Memoized in memory only — the
  /// rich object is not serialized; the disk tier holds just ThrottlePlan.
  analysis::KernelAnalysis analysis_for(const ir::Kernel& kernel,
                                        const arch::LaunchConfig& launch,
                                        const expr::ParamEnv& params,
                                        const analysis::AnalysisOptions& opts = {});

  const arch::GpuArch& gpu_arch() const { return arch_; }
  DiskCache* disk() const { return disk_; }
  void set_disk(DiskCache* disk) { disk_ = disk; }

 private:
  arch::GpuArch arch_;
  DiskCache* disk_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, analysis::KernelAnalysis> memo_;
};

}  // namespace catt::exec
