#include "exec/pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "gpusim/parallel.hpp"
#include "obs/obs.hpp"

namespace catt::exec {

Pool::Pool(int threads) {
  threads = std::max(1, threads);
  if (const obs::SimObs* ob = obs::resolve(nullptr)) {
    obs::Registry& reg = ob->registry_or_global();
    reg.set(reg.gauge("exec.pool.threads"), static_cast<std::uint64_t>(threads));
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void Pool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void Pool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // Job lifecycle observability rides the host timeline (pid 0,
    // wall-clock microseconds); the whole block folds away when obs is
    // off. The registry/trace sinks are per-thread sharded, so this adds
    // no cross-worker contention.
    if (const obs::SimObs* ob = obs::resolve(nullptr)) {
      obs::Registry& reg = ob->registry_or_global();
      reg.add(reg.counter("exec.pool.jobs"), 1);
      if (ob->trace_level >= 1) {
        obs::Tracer& tr = ob->tracer_or_global();
        const std::uint32_t name = tr.intern("pool_job");
        const std::int64_t t0 = tr.host_now_us();
        job();
        tr.record(obs::TraceEvent{name, 0, obs::Phase::kComplete, 0, tr.host_tid(), t0,
                                  tr.host_now_us() - t0, 0});
        continue;
      }
    }
    job();
  }
}

int Pool::default_jobs() {
  int jobs = 0;
  if (const char* env = std::getenv("CATT_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) jobs = n;
  }
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw > 0 ? static_cast<int>(hw) : 1;
  }
  // The parallelism layers multiply: each pool job may itself run a
  // sim_threads-wide timing loop feeding from trace_threads interpreter
  // workers, so the job count shares the same core budget rather than
  // oversubscribing jobs x sim x trace workers.
  const int sim = std::max(1, sim::resolve_sim_threads(0));
  const int tracegen = std::max(1, sim::resolve_trace_threads(0));
  return std::max(1, jobs / (sim * tracegen));
}

Pool& Pool::shared() {
  static Pool pool;
  return pool;
}

}  // namespace catt::exec
