#include "exec/plan_service.hpp"

#include "obs/obs.hpp"

namespace catt::exec {

std::uint64_t PlanService::plan_key(const ir::Kernel& kernel, const arch::LaunchConfig& launch,
                                    const expr::ParamEnv& params,
                                    const analysis::AnalysisOptions& opts) const {
  // Every input the analysis reads, plus a "plan" salt separating this key
  // space from the chained launch-stats keys.
  return CacheKey{}
      .gpu_arch(arch_)
      .kernel(kernel)
      .launch(launch)
      .params(params)
      .b(opts.conservative_irregular)
      .b(opts.warp_level_first)
      .b(opts.enable_tb_level)
      .b(opts.dedupe_tb_footprint)
      .i32(opts.min_active_warps)
      .str("plan")
      .value();
}

analysis::ThrottlePlan PlanService::plan_for(const ir::Kernel& kernel,
                                             const arch::LaunchConfig& launch,
                                             const expr::ParamEnv& params,
                                             const analysis::AnalysisOptions& opts) {
  const std::uint64_t key = plan_key(kernel, launch, params, opts);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      obs::count("exec.planservice.mem_hits");
      return it->second.plan;
    }
  }
  if (disk_ != nullptr) {
    if (auto plan = disk_->get_plan(key); plan.has_value()) {
      obs::count("exec.planservice.disk_hits");
      return *plan;
    }
  }
  return analysis_for(kernel, launch, params, opts).plan;
}

analysis::KernelAnalysis PlanService::analysis_for(const ir::Kernel& kernel,
                                                   const arch::LaunchConfig& launch,
                                                   const expr::ParamEnv& params,
                                                   const analysis::AnalysisOptions& opts) {
  const std::uint64_t key = plan_key(kernel, launch, params, opts);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = memo_.find(key);
  if (it != memo_.end()) {
    obs::count("exec.planservice.mem_hits");
    return it->second;
  }
  obs::count("exec.planservice.computes");
  analysis::KernelAnalysis ka = analysis::analyze(arch_, kernel, launch, params, opts);
  if (disk_ != nullptr) disk_->put_plan(key, ka.plan);
  return memo_.emplace(key, std::move(ka)).first->second;
}

}  // namespace catt::exec
