#include "exec/disk_cache.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "exec/wire.hpp"
#include "obs/obs.hpp"

namespace catt::exec {
namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMagic = 0x45435443;  // "CTCE"
constexpr std::uint32_t kFormat = 1;
/// magic + format + engine + kind + key + payload size + payload checksum.
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 1 + 8 + 8 + 8;

std::uint64_t payload_checksum(std::string_view payload) {
  hash::Fnv1a h;
  h.str(payload);
  return h.value();
}

const char* hex_digits = "0123456789abcdef";

std::string key_hex(std::uint64_t key) {
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = hex_digits[key & 0xF];
    key >>= 4;
  }
  return s;
}

/// RAII read-only mapping of a whole file.
class Mapping {
 public:
  explicit Mapping(const std::string& path) {
    fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ < 0) return;
    struct stat st{};
    if (::fstat(fd_, &st) != 0 || st.st_size < 0) return;
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ == 0) return;  // mmap of 0 bytes is EINVAL; treat as empty
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd_, 0);
    if (p != MAP_FAILED) base_ = static_cast<const char*>(p);
  }
  ~Mapping() {
    if (base_ != nullptr) ::munmap(const_cast<char*>(base_), size_);
    if (fd_ >= 0) ::close(fd_);
  }
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;

  bool open() const { return fd_ >= 0; }
  std::string_view bytes() const {
    return base_ != nullptr ? std::string_view(base_, size_) : std::string_view();
  }

 private:
  int fd_ = -1;
  std::size_t size_ = 0;
  const char* base_ = nullptr;
};

}  // namespace

DiskCache::DiskCache(DiskCacheConfig cfg) : cfg_(std::move(cfg)) {
  std::error_code ec;
  fs::create_directories(cfg_.dir, ec);
  if (ec) {
    throw SimError("disk cache: cannot create directory " + cfg_.dir + ": " + ec.message());
  }
  // The size/mtime index is built lazily (ensure_index_locked): opening a
  // cache must stay O(1) even over a directory with thousands of entries,
  // because most short-lived clients never hit the max_bytes bound.
}

std::string DiskCache::entry_path(std::uint64_t key, PayloadKind kind) const {
  const std::string hex = key_hex(key);
  return cfg_.dir + "/" + hex.substr(0, 2) + "/" + hex + "-" +
         std::to_string(static_cast<int>(kind)) + ".ce";
}

std::optional<std::string> DiskCache::get(std::uint64_t key, PayloadKind kind) {
  const std::string path = entry_path(key, kind);
  std::lock_guard<std::mutex> lock(mu_);
  Mapping map(path);
  if (!map.open()) {
    ++counters_.misses;
    obs::count("exec.diskcache.misses");
    return std::nullopt;
  }
  const std::string_view bytes = map.bytes();
  // Validate exhaustively; any mismatch drops the entry and misses.
  bool version_skew = false;
  std::optional<std::string> payload;
  if (bytes.size() >= kHeaderBytes) {
    wire::Reader r(bytes);
    const std::uint32_t magic = r.u32();
    const std::uint32_t format = r.u32();
    const std::uint32_t engine = r.u32();
    const std::uint8_t k = r.u8();
    const std::uint64_t entry_key = r.u64();
    const std::uint64_t size = r.u64();
    const std::uint64_t sum = r.u64();
    version_skew = magic == kMagic && format == kFormat && engine != cfg_.engine_version;
    if (magic == kMagic && format == kFormat && engine == cfg_.engine_version &&
        k == static_cast<std::uint8_t>(kind) && entry_key == key && size == r.remaining()) {
      std::string body(bytes.substr(kHeaderBytes));
      if (payload_checksum(body) == sum) payload = std::move(body);
    }
  }
  if (!payload.has_value()) {
    // Truncated, corrupt, or written by a different engine version: drop it
    // so the slot is rebuilt by the next publish.
    drop_entry_locked(path);
    ++counters_.dropped;
    ++counters_.misses;
    obs::count(version_skew ? "exec.diskcache.version_skew" : "exec.diskcache.corrupt");
    obs::count("exec.diskcache.misses");
    return std::nullopt;
  }
  ++counters_.hits;
  obs::count("exec.diskcache.hits");
  if (cfg_.evict == DiskCacheConfig::Evict::kLru && cfg_.max_bytes > 0) {
    // Touch for LRU: hits must outlive entries that were merely written.
    std::error_code ec;
    const auto now = std::chrono::file_clock::now();
    fs::last_write_time(path, now, ec);
    if (indexed_) {
      const auto it = index_.find(path);
      if (it != index_.end()) {
        it->second.mtime = now;
      } else {
        // Published by another process after our scan; adopt it so the
        // touch actually protects it from eviction.
        index_add_locked(path, 0);
      }
    }
  }
  return payload;
}

bool DiskCache::put(std::uint64_t key, PayloadKind kind, std::string_view payload) {
  const std::string path = entry_path(key, kind);
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  if (fs::exists(path, ec)) {
    // Content-addressed: an existing entry is byte-identical by
    // construction, so a second publish is a no-op.
    if (indexed_ && index_.find(path) == index_.end()) index_add_locked(path, 0);
    ++counters_.dup_writes;
    obs::count("exec.diskcache.dup_writes");
    return true;
  }

  wire::Writer w;
  w.u32(kMagic);
  w.u32(kFormat);
  w.u32(cfg_.engine_version);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(key);
  w.u64(payload.size());
  w.u64(payload_checksum(payload));
  const std::string& header = w.buffer();
  const std::uint64_t entry_bytes = header.size() + payload.size();

  if (cfg_.max_bytes > 0) {
    // First bounded publish is the index's "first use": everything after
    // runs off the in-process totals, never another directory walk.
    ensure_index_locked();
    if (size_bytes_ + entry_bytes > cfg_.max_bytes) {
      if (cfg_.evict == DiskCacheConfig::Evict::kLru) {
        evict_to_fit_locked(entry_bytes);
      }
      if (size_bytes_ + entry_bytes > cfg_.max_bytes) return false;  // entry larger than budget
    }
  }

  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) return false;
  // Unique temp name in the same directory so rename() cannot cross
  // filesystems; pid + per-instance sequence keeps concurrent writers
  // (threads and processes) from colliding.
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." + std::to_string(tmp_seq_++);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  bool ok = true;
  auto write_all = [&](std::string_view bytes) {
    std::size_t off = 0;
    while (ok && off < bytes.size()) {
      const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
      if (n <= 0) ok = false;
      else off += static_cast<std::size_t>(n);
    }
  };
  write_all(header);
  write_all(payload);
  if (ok && cfg_.fsync && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (ok && std::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) {
    ::unlink(tmp.c_str());
    log::warn("disk cache: failed to publish ", path);
    return false;
  }
  size_bytes_ += entry_bytes;
  if (indexed_) index_add_locked(path, entry_bytes);
  ++counters_.writes;
  obs::count("exec.diskcache.writes");
  return true;
}

std::optional<sim::KernelStats> DiskCache::get_stats(std::uint64_t key) {
  const auto payload = get(key, PayloadKind::kKernelStats);
  if (!payload.has_value()) return std::nullopt;
  try {
    return wire::decode_kernel_stats(*payload);
  } catch (const SimError&) {
    return std::nullopt;  // checksummed payload that still fails to decode
  }
}

bool DiskCache::put_stats(std::uint64_t key, const sim::KernelStats& s) {
  return put(key, PayloadKind::kKernelStats, wire::encode_kernel_stats(s));
}

std::optional<analysis::ThrottlePlan> DiskCache::get_plan(std::uint64_t key) {
  const auto payload = get(key, PayloadKind::kThrottlePlan);
  if (!payload.has_value()) return std::nullopt;
  try {
    return wire::decode_throttle_plan(*payload);
  } catch (const SimError&) {
    return std::nullopt;
  }
}

bool DiskCache::put_plan(std::uint64_t key, const analysis::ThrottlePlan& p) {
  return put(key, PayloadKind::kThrottlePlan, wire::encode_throttle_plan(p));
}

DiskCache::Counters DiskCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::uint64_t DiskCache::size_bytes() {
  std::lock_guard<std::mutex> lock(mu_);
  ensure_index_locked();
  return size_bytes_;
}

void DiskCache::drop_entry_locked(const std::string& path) {
  std::error_code ec;
  const auto sz = fs::file_size(path, ec);
  if (!ec) size_bytes_ -= std::min<std::uint64_t>(size_bytes_, sz);
  fs::remove(path, ec);
  index_.erase(path);
}

void DiskCache::ensure_index_locked() {
  if (indexed_) return;
  indexed_ = true;
  size_bytes_ = 0;
  index_.clear();
  std::error_code ec;
  for (fs::recursive_directory_iterator it(cfg_.dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (it->path().extension() != ".ce") continue;
    IndexEntry e;
    e.size = it->file_size(ec);
    if (ec) continue;
    e.mtime = fs::last_write_time(it->path(), ec);
    if (ec) continue;
    size_bytes_ += e.size;
    index_.emplace(it->path().string(), e);
  }
  ++counters_.rescans;
  obs::count("exec.diskcache.rescans");
}

void DiskCache::index_add_locked(const std::string& path, std::uint64_t size) {
  if (!indexed_) return;
  std::error_code ec;
  IndexEntry e;
  e.size = size != 0 ? size : fs::file_size(path, ec);
  if (ec) return;
  e.mtime = fs::last_write_time(path, ec);
  if (ec) e.mtime = std::chrono::file_clock::now();
  if (size != 0) {
    // Fresh publish: the rename just happened, so "now" is exact and one
    // stat cheaper.
    e.mtime = std::chrono::file_clock::now();
  }
  index_[path] = e;
  if (size == 0) size_bytes_ += e.size;  // discovered entry: not yet counted
}

void DiskCache::evict_to_fit_locked(std::uint64_t incoming_bytes) {
  // Evict strictly from the in-process index (built once, updated on every
  // publish/hit/drop) — the whole point is that overflow no longer walks
  // the directory. Entries other processes published since the scan are
  // not candidates and not counted; they age out via their own publisher.
  struct Entry {
    fs::file_time_type mtime;
    std::uint64_t size;
    std::string path;
  };
  std::vector<Entry> entries;
  entries.reserve(index_.size());
  for (const auto& [path, e] : index_) entries.push_back({e.mtime, e.size, path});
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  for (const Entry& e : entries) {
    if (size_bytes_ + incoming_bytes <= cfg_.max_bytes) break;
    std::error_code rec;
    if (fs::remove(e.path, rec)) {
      size_bytes_ -= std::min(size_bytes_, e.size);
      ++counters_.evictions;
      obs::count("exec.diskcache.evictions");
    }
    index_.erase(e.path);
  }
}

}  // namespace catt::exec
