// Client for the catt_serve daemon: a length-prefixed binary protocol
// over a unix-domain stream socket.
//
// Framing (both directions): [u32 le payload length][payload], payload
// capped at kMaxFrameBytes. A request payload is [u8 op][op body]; a
// response payload is [u8 status][body] where status 0 carries the op's
// result and status 1 carries a UTF-8 error message (rethrown here as
// catt::SimError).
//
// Ops:
//   kOpPing      body: empty            -> u32 engine version
//   kOpRun       body: str workload, u32 num_sms, str arch, str policy
//                spec, str sched spec   -> wire-encoded AppResult
//                                          (codec in throttle/remote.hpp)
//   kOpPlan      body: str workload, u32 num_sms, str arch,
//                u32 schedule index     -> wire-encoded ThrottlePlan
//   kOpStats     body: u64 cache key    -> u8 found [+ KernelStats];
//                                          lookup only, never computes
//   kOpShutdown  body: empty            -> empty; server stops afterwards
//   kOpRunv      body: u32 count, then count kOpRun bodies back to back
//                                       -> count wire-encoded AppResults,
//                                          in request order (one round-trip
//                                          for a whole batch of queries)
//
// This class stays generic (framing + the typed ops above); AppResult
// decoding and the Runner-shaped convenience wrapper live in
// throttle/remote.hpp to keep exec:: below the throttle layer.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "gpusim/gpu.hpp"

namespace catt::exec {
namespace rpc {

inline constexpr std::uint8_t kOpPing = 1;
inline constexpr std::uint8_t kOpRun = 2;
inline constexpr std::uint8_t kOpPlan = 3;
inline constexpr std::uint8_t kOpStats = 4;
inline constexpr std::uint8_t kOpShutdown = 5;
inline constexpr std::uint8_t kOpRunv = 6;

inline constexpr std::uint8_t kStatusOk = 0;
inline constexpr std::uint8_t kStatusError = 1;

/// Frame-size guard on both ends: a corrupt length prefix fails fast
/// instead of attempting a multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Blocking frame IO on a connected socket; throws catt::SimError on a
/// short read/write, closed peer, or an oversized frame.
void send_frame(int fd, std::string_view payload);
std::string recv_frame(int fd);

}  // namespace rpc

class Client {
 public:
  /// Connects immediately; throws catt::SimError when the daemon is not
  /// reachable at `socket_path`.
  explicit Client(std::string socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One request round-trip. Returns the response body on success; throws
  /// catt::SimError carrying the server's message on an error status.
  /// Thread-safe: calls on one client are serialized on the connection.
  std::string call(std::uint8_t op, std::string_view body = {});

  /// True when the server answers and reports a matching engine version.
  bool ping();

  /// Cached stats for one chained key, from the server's tiers; nullopt
  /// when the server has never simulated it (this op never computes).
  std::optional<sim::KernelStats> stats_for(std::uint64_t key);

  /// Asks the server to exit after responding.
  void shutdown_server();

  const std::string& socket_path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::mutex mu_;
};

}  // namespace catt::exec
